package kvstore

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"pareto/internal/telemetry"
)

// ClusterClient routes commands across a slot-partitioned set of
// kvstored processes: key → hash slot → owning store, with one pooled
// *Client per store and MOVED redirects chased and cached. It
// implements KV, so everything written against a single store — the
// distrib shipping paths, the partitioner, the barrier — points at a
// cluster unchanged.
//
// The slot table is primed from any reachable seed via CLUSTER SLOTS
// and repaired lazily: a MOVED reply rewrites the one slot it names, a
// missing owner triggers a full refresh. Multi-key commands (MSET,
// MGET, DEL) are split by owner and merged back in argument order.
type ClusterClient struct {
	mu      sync.Mutex
	timeout time.Duration
	opts    Options
	copts   ClusterOptions
	conns   map[string]*Client
	owner   [NumSlots]string
	seeds   []string
	// replicas maps an owner address to the replica addresses it last
	// advertised (the >3-element tail of its CLUSTER SLOTS entries).
	// Collected while the owner is alive — the failover candidate list
	// must exist before the failure does.
	replicas map[string][]string
	// failing maps an owner address to when its probes started failing;
	// an owner failing longer than FailAfter is declared dead.
	failing map[string]time.Time

	hbStop chan struct{}
	hbWG   sync.WaitGroup

	moved         *telemetry.Counter // client-side MOVED redirects chased
	probeFailures *telemetry.Counter
	failovers     *telemetry.Counter
	failoverMs    *telemetry.Gauge // duration of the last failover
}

// maxRedirects bounds a doKey MOVED chase; a table more than a few
// hops stale means the cluster map is cyclic garbage.
const maxRedirects = 4

// ClusterOptions extends per-store client Options with cluster-level
// behavior: heartbeat failure detection, automatic failover, and bounds
// on redirect chasing. The zero value disables the heartbeat and
// reproduces DialCluster's routing behavior (plus default hop backoff).
type ClusterOptions struct {
	// Client configures each per-store connection (timeouts, retries,
	// fault-injection dialer, telemetry).
	Client Options

	// HeartbeatEvery enables failure detection: every interval, each
	// distinct slot owner is probed (fresh connection, PING + CLUSTER
	// SLOTS) and its advertised replicas are cached. 0 = no heartbeat.
	HeartbeatEvery time.Duration
	// FailAfter is how long an owner's probes must fail consecutively
	// before it is declared dead. ≤ 0 = 3×HeartbeatEvery.
	FailAfter time.Duration
	// ProbeTimeout bounds one probe's dial + exchanges. ≤ 0 = 500ms.
	ProbeTimeout time.Duration
	// AutoFailover promotes a cached replica (REPLTAKEOVER) when an
	// owner is declared dead, rewrites the local slot table, and pushes
	// CLUSTER REASSIGN to the surviving owners. Requires the heartbeat.
	AutoFailover bool

	// RouteDeadline bounds one routed command's total wall clock across
	// redirect hops and error retries. 0 = no deadline (hop cap only).
	RouteDeadline time.Duration
	// HopBackoff is the initial sleep between routing hops, doubling per
	// hop up to MaxHopBackoff — a flapping failover makes clients wait,
	// not spin. ≤ 0 = 2ms / 250ms.
	HopBackoff    time.Duration
	MaxHopBackoff time.Duration
}

func (o *ClusterOptions) normalize() {
	if o.FailAfter <= 0 {
		o.FailAfter = 3 * o.HeartbeatEvery
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.HopBackoff <= 0 {
		o.HopBackoff = 2 * time.Millisecond
	}
	if o.MaxHopBackoff <= 0 {
		o.MaxHopBackoff = 250 * time.Millisecond
	}
}

// DialCluster connects to a slot-partitioned cluster through its
// seeds: the first reachable seed's CLUSTER SLOTS primes the slot
// table, and per-store connections are dialed on demand with the same
// timeout and Options a single-store DialOptions would use.
func DialCluster(seeds []string, timeout time.Duration, opts Options) (*ClusterClient, error) {
	return DialClusterOptions(seeds, timeout, ClusterOptions{Client: opts})
}

// DialClusterOptions is DialCluster with cluster-level failure
// detection and failover behavior.
func DialClusterOptions(seeds []string, timeout time.Duration, copts ClusterOptions) (*ClusterClient, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("kvstore: cluster dial with no seeds")
	}
	copts.normalize()
	reg := copts.Client.Telemetry
	cc := &ClusterClient{
		timeout:       timeout,
		opts:          copts.Client,
		copts:         copts,
		conns:         make(map[string]*Client),
		seeds:         append([]string(nil), seeds...),
		replicas:      make(map[string][]string),
		failing:       make(map[string]time.Time),
		moved:         reg.Counter("kv_cluster_client_moved_total"),
		probeFailures: reg.Counter("kv_cluster_client_probe_failures_total"),
		failovers:     reg.Counter("kv_cluster_client_failovers_total"),
		failoverMs:    reg.Gauge("kv_cluster_failover_last_ms"),
	}
	if err := cc.refresh(); err != nil {
		cc.Close()
		return nil, err
	}
	if copts.HeartbeatEvery > 0 {
		cc.hbStop = make(chan struct{})
		cc.hbWG.Add(1)
		go cc.heartbeatLoop()
	}
	return cc, nil
}

// refresh re-primes the slot table from the first reachable node
// (known connections first, then seeds).
func (cc *ClusterClient) refresh() error {
	cc.mu.Lock()
	addrs := make([]string, 0, len(cc.conns)+len(cc.seeds))
	for a := range cc.conns {
		addrs = append(addrs, a)
	}
	addrs = append(addrs, cc.seeds...)
	cc.mu.Unlock()
	var lastErr error
	for _, addr := range addrs {
		c, err := cc.clientFor(addr)
		if err != nil {
			lastErr = err
			continue
		}
		rep, err := c.Do("CLUSTER", []byte("SLOTS"))
		if err != nil {
			lastErr = err
			continue
		}
		if err := rep.Err(); err != nil {
			lastErr = err
			continue
		}
		entries, err := parseSlotsEntries(rep)
		if err != nil {
			lastErr = err
			continue
		}
		cc.mu.Lock()
		cc.owner = [NumSlots]string{}
		for _, e := range entries {
			for s := e.Lo; s <= e.Hi; s++ {
				cc.owner[s] = e.Addr
			}
			if len(e.Replicas) > 0 {
				cc.replicas[e.Addr] = e.Replicas
			}
		}
		cc.mu.Unlock()
		return nil
	}
	return fmt.Errorf("kvstore: cluster slots unavailable from any node: %w", lastErr)
}

// slotsEntry is one decoded CLUSTER SLOTS entry: the range, its owner,
// and the replica addresses the owner advertised for it (only present
// on ranges the replying node itself owns).
type slotsEntry struct {
	SlotRange
	Replicas []string
}

// parseSlotsEntries decodes a CLUSTER SLOTS array of
// [lo, hi, addr, replica...] entries; the replica tail is optional.
func parseSlotsEntries(rep Reply) ([]slotsEntry, error) {
	if rep.Type != Array {
		return nil, fmt.Errorf("kvstore: CLUSTER SLOTS reply is %v, want array", rep.Type)
	}
	out := make([]slotsEntry, 0, len(rep.Array))
	for _, el := range rep.Array {
		if el.Type != Array || len(el.Array) < 3 ||
			el.Array[0].Type != Integer || el.Array[1].Type != Integer ||
			el.Array[2].Type != BulkString {
			return nil, fmt.Errorf("kvstore: malformed CLUSTER SLOTS entry")
		}
		e := slotsEntry{SlotRange: SlotRange{
			Lo:   int(el.Array[0].Int),
			Hi:   int(el.Array[1].Int),
			Addr: string(el.Array[2].Bulk),
		}}
		for _, rel := range el.Array[3:] {
			if rel.Type != BulkString {
				return nil, fmt.Errorf("kvstore: malformed CLUSTER SLOTS replica entry")
			}
			e.Replicas = append(e.Replicas, string(rel.Bulk))
		}
		out = append(out, e)
	}
	return out, nil
}

// parseSlotsReply decodes a CLUSTER SLOTS reply down to its ranges.
func parseSlotsReply(rep Reply) ([]SlotRange, error) {
	entries, err := parseSlotsEntries(rep)
	if err != nil {
		return nil, err
	}
	out := make([]SlotRange, len(entries))
	for i, e := range entries {
		out[i] = e.SlotRange
	}
	return out, nil
}

// Slots returns the client's current view of the slot map as maximal
// contiguous ranges.
func (cc *ClusterClient) Slots() []SlotRange {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	t := slotTable{owner: cc.owner}
	return t.ranges()
}

// clientFor returns (dialing on demand) the pooled connection to addr.
func (cc *ClusterClient) clientFor(addr string) (*Client, error) {
	cc.mu.Lock()
	c, ok := cc.conns[addr]
	cc.mu.Unlock()
	if ok {
		return c, nil
	}
	// Dial outside the lock: a dead node's timeout must not stall
	// routing to live ones.
	fresh, err := DialOptions(addr, cc.timeout, cc.opts)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.conns[addr]; ok { // raced: keep the winner
		fresh.Close()
		return c, nil
	}
	cc.conns[addr] = fresh
	return fresh, nil
}

func (cc *ClusterClient) ownerOf(slot int) string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.owner[slot]
}

func (cc *ClusterClient) setOwner(slot int, addr string) {
	cc.mu.Lock()
	cc.owner[slot] = addr
	cc.mu.Unlock()
}

// heartbeatLoop probes every distinct slot owner each interval,
// harvesting replica advertisements while owners are healthy and
// declaring an owner dead once its probes have failed for FailAfter.
func (cc *ClusterClient) heartbeatLoop() {
	defer cc.hbWG.Done()
	t := time.NewTicker(cc.copts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-cc.hbStop:
			return
		case <-t.C:
			cc.probeOwners()
		}
	}
}

// probeOwners runs one heartbeat round. Probes use fresh short-timeout
// connections (through the same Dialer, so fault injection applies):
// the pooled clients' own retry/backoff machinery would smear failure
// detection latency, and a probe must never steal a pooled connection
// mid-pipeline.
func (cc *ClusterClient) probeOwners() {
	cc.mu.Lock()
	ownersSet := make(map[string]struct{})
	for _, a := range cc.owner {
		if a != "" {
			ownersSet[a] = struct{}{}
		}
	}
	cc.mu.Unlock()
	for addr := range ownersSet {
		entries, err := cc.probe(addr)
		now := time.Now()
		if err != nil {
			cc.probeFailures.Inc()
			cc.mu.Lock()
			since, known := cc.failing[addr]
			if !known {
				cc.failing[addr] = now
			}
			dead := known && now.Sub(since) >= cc.copts.FailAfter
			cc.mu.Unlock()
			if dead && cc.copts.AutoFailover {
				cc.failover(addr)
			}
			continue
		}
		cc.mu.Lock()
		delete(cc.failing, addr)
		for _, e := range entries {
			if e.Addr == addr && len(e.Replicas) > 0 {
				cc.replicas[addr] = e.Replicas
			}
		}
		cc.mu.Unlock()
	}
}

// probe checks one owner's liveness and collects its slots view.
func (cc *ClusterClient) probe(addr string) ([]slotsEntry, error) {
	opts := Options{
		OpTimeout: cc.copts.ProbeTimeout,
		Dialer:    cc.opts.Dialer,
	}
	c, err := DialOptions(addr, cc.copts.ProbeTimeout, opts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rep, err := c.Do("CLUSTER", []byte("SLOTS"))
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return parseSlotsEntries(rep)
}

// failover promotes a cached replica of the dead owner: REPLTAKEOVER
// flips the replica's role and rewrites its slot table; this client's
// table follows, and the surviving owners get a best-effort CLUSTER
// REASSIGN so their MOVED redirects chase to the new owner instead of
// the corpse. If the replica was already promoted by another client,
// its slots view is adopted instead.
func (cc *ClusterClient) failover(dead string) {
	start := time.Now()
	cc.mu.Lock()
	candidates := append([]string(nil), cc.replicas[dead]...)
	// Reset the failure clock either way: if no candidate works the
	// owner gets a fresh FailAfter window before the next attempt,
	// instead of a hot retry loop every heartbeat.
	delete(cc.failing, dead)
	cc.mu.Unlock()
	for _, rep := range candidates {
		promoted := false
		if c, err := cc.clientFor(rep); err == nil {
			if r, derr := c.Do("REPLTAKEOVER"); derr == nil && r.Type == Integer {
				promoted = true
			}
		}
		if !promoted {
			// REPLTAKEOVER failed — possibly because another client won
			// the race and rep is already primary. Adopt its table if it
			// now owns the dead node's slots.
			entries, err := cc.probe(rep)
			if err != nil {
				continue
			}
			owns := false
			for _, e := range entries {
				if e.Addr == rep {
					owns = true
					break
				}
			}
			if !owns {
				continue
			}
		}
		cc.mu.Lock()
		moved := 0
		for s, a := range cc.owner {
			if a == dead {
				cc.owner[s] = rep
				moved++
			}
		}
		delete(cc.replicas, dead)
		survivors := make(map[string]struct{})
		for _, a := range cc.owner {
			if a != "" && a != rep {
				survivors[a] = struct{}{}
			}
		}
		cc.mu.Unlock()
		for addr := range survivors {
			if c, err := cc.clientFor(addr); err == nil {
				c.Do("CLUSTER", []byte("REASSIGN"), []byte(dead), []byte(rep))
			}
		}
		cc.failovers.Inc()
		cc.failoverMs.Set(time.Since(start).Milliseconds())
		_ = moved
		return
	}
}

// anyClient returns a connection to any cluster node (for keyless
// commands), preferring the owner of slot 0's neighborhood.
func (cc *ClusterClient) anyClient() (*Client, error) {
	cc.mu.Lock()
	var addr string
	for _, a := range cc.owner {
		if a != "" {
			addr = a
			break
		}
	}
	cc.mu.Unlock()
	if addr == "" {
		if len(cc.seeds) == 0 {
			return nil, fmt.Errorf("kvstore: no cluster nodes known")
		}
		addr = cc.seeds[0]
	}
	return cc.clientFor(addr)
}

// doKey routes one single-slot command to its owner, chasing MOVED
// redirects (each one repairs the table entry it names) up to
// maxRedirects hops. Routing work is bounded: hops after the first wait
// out a capped exponential backoff, the whole chase respects
// RouteDeadline, and a dead owner costs one failed attempt (the table
// is refreshed and, for idempotent commands, the hop retried) instead
// of an immediate caller-visible error — which is what lets a routed
// workload ride out a failover.
func (cc *ClusterClient) doKey(key, cmd string, args [][]byte) (Reply, error) {
	slot := SlotForKey(key)
	addr := cc.ownerOf(slot)
	var deadline time.Time
	if d := cc.copts.RouteDeadline; d > 0 {
		deadline = time.Now().Add(d)
	}
	backoff := cc.copts.HopBackoff
	var lastErr error
	for hop := 0; hop <= maxRedirects; hop++ {
		if hop > 0 {
			d := backoff
			if !deadline.IsZero() {
				rem := time.Until(deadline)
				if rem <= 0 {
					return Reply{}, fmt.Errorf("kvstore: slot %d: route deadline exceeded after %d hops: %v", slot, hop, lastErr)
				}
				if d > rem {
					d = rem
				}
			}
			time.Sleep(d)
			if backoff *= 2; backoff > cc.copts.MaxHopBackoff {
				backoff = cc.copts.MaxHopBackoff
			}
		}
		if addr == "" {
			if err := cc.refresh(); err != nil {
				lastErr = err
				continue
			}
			if addr = cc.ownerOf(slot); addr == "" {
				lastErr = fmt.Errorf("kvstore: hash slot %d unassigned", slot)
				continue
			}
		}
		c, err := cc.clientFor(addr)
		if err != nil {
			// Dial failure: nothing was sent, always safe to re-route.
			lastErr = err
			addr = ""
			continue
		}
		rep, err := c.Do(cmd, args...)
		if err != nil {
			lastErr = err
			if !idempotent[strings.ToUpper(cmd)] {
				// The command may have reached the dead owner; re-sending
				// elsewhere could double-apply it. Same contract as
				// Client's ErrNotRetryable.
				return Reply{}, err
			}
			addr = ""
			continue
		}
		if s, to, ok := parseMoved(rep); ok {
			cc.moved.Inc()
			cc.setOwner(s, to)
			lastErr = fmt.Errorf("kvstore: MOVED %d %s", s, to)
			addr = to
			continue
		}
		return rep, nil
	}
	return Reply{}, fmt.Errorf("kvstore: slot %d: gave up after %d routing hops: %v", slot, maxRedirects, lastErr)
}

// Do routes by the command's first key; keyless commands go to an
// arbitrary node.
func (cc *ClusterClient) Do(cmd string, args ...[]byte) (Reply, error) {
	id := lookupCmd(cmd)
	if first := firstKeyArg(id); first >= 0 && len(args) > first {
		return cc.doKey(string(args[first]), cmd, args)
	}
	c, err := cc.anyClient()
	if err != nil {
		return Reply{}, err
	}
	return c.Do(cmd, args...)
}

// Get fetches a string key; ErrNil if absent.
func (cc *ClusterClient) Get(key string) ([]byte, error) {
	rep, err := cc.doKey(key, "GET", [][]byte{[]byte(key)})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	if rep.Type == NullBulk {
		return nil, ErrNil
	}
	return rep.Bulk, nil
}

// Set stores a string key.
func (cc *ClusterClient) Set(key string, val []byte) error {
	rep, err := cc.doKey(key, "SET", [][]byte{[]byte(key), val})
	if err != nil {
		return err
	}
	return rep.Err()
}

// Incr atomically increments a counter key on its owning store.
func (cc *ClusterClient) Incr(key string) (int64, error) {
	rep, err := cc.doKey(key, "INCR", [][]byte{[]byte(key)})
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// RPush appends values to a list on its owning store.
func (cc *ClusterClient) RPush(key string, vals ...[]byte) (int64, error) {
	args := make([][]byte, 0, len(vals)+1)
	args = append(args, []byte(key))
	args = append(args, vals...)
	rep, err := cc.doKey(key, "RPUSH", args)
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// LRange fetches list elements in [start, stop] from the key's owner.
func (cc *ClusterClient) LRange(key string, start, stop int64) ([][]byte, error) {
	rep, err := cc.doKey(key, "LRANGE", [][]byte{
		[]byte(key),
		[]byte(strconv.FormatInt(start, 10)),
		[]byte(strconv.FormatInt(stop, 10)),
	})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(rep.Array))
	for i, el := range rep.Array {
		out[i] = el.Bulk
	}
	return out, nil
}

// LRangeChunked streams a list in bounded windows, as Client's.
func (cc *ClusterClient) LRangeChunked(key string, window int64, fn func(batch [][]byte) error) error {
	if window < 1 {
		return fmt.Errorf("kvstore: lrange window %d, need ≥ 1", window)
	}
	for start := int64(0); ; start += window {
		batch, err := cc.LRange(key, start, start+window-1)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			return nil
		}
		if err := fn(batch); err != nil {
			return err
		}
		if int64(len(batch)) < window {
			return nil
		}
	}
}

// LLen returns a list's length from the key's owner.
func (cc *ClusterClient) LLen(key string) (int64, error) {
	rep, err := cc.doKey(key, "LLEN", [][]byte{[]byte(key)})
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// MSet splits the batch by slot owner and issues one MSET per store.
// Atomicity is per store, not cluster-wide — same as issuing the
// groups yourself.
func (cc *ClusterClient) MSet(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: mset with %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	groups, err := cc.groupByOwner(keys)
	if err != nil {
		return err
	}
	for addr, idx := range groups {
		c, err := cc.clientFor(addr)
		if err != nil {
			return err
		}
		gk := make([]string, len(idx))
		gv := make([][]byte, len(idx))
		for i, j := range idx {
			gk[i], gv[i] = keys[j], vals[j]
		}
		if err := c.MSet(gk, gv); err != nil {
			return err
		}
	}
	return nil
}

// MGet splits the fetch by slot owner and merges values back into
// argument order; a missing key yields a nil entry.
func (cc *ClusterClient) MGet(keys ...string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	groups, err := cc.groupByOwner(keys)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(keys))
	for addr, idx := range groups {
		c, err := cc.clientFor(addr)
		if err != nil {
			return nil, err
		}
		gk := make([]string, len(idx))
		for i, j := range idx {
			gk[i] = keys[j]
		}
		vals, err := c.MGet(gk...)
		if err != nil {
			return nil, err
		}
		for i, j := range idx {
			out[j] = vals[i]
		}
	}
	return out, nil
}

// Del removes keys across their owners, returning how many existed.
func (cc *ClusterClient) Del(keys ...string) (int64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	groups, err := cc.groupByOwner(keys)
	if err != nil {
		return 0, err
	}
	var n int64
	for addr, idx := range groups {
		c, err := cc.clientFor(addr)
		if err != nil {
			return n, err
		}
		gk := make([]string, len(idx))
		for i, j := range idx {
			gk[i] = keys[j]
		}
		m, err := c.Del(gk...)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// groupByOwner maps owner address → indices into keys, refreshing the
// table once if any slot is unassigned.
func (cc *ClusterClient) groupByOwner(keys []string) (map[string][]int, error) {
	for attempt := 0; ; attempt++ {
		groups := make(map[string][]int)
		stale := false
		for i, k := range keys {
			addr := cc.ownerOf(SlotForKey(k))
			if addr == "" {
				stale = true
				break
			}
			groups[addr] = append(groups[addr], i)
		}
		if !stale {
			return groups, nil
		}
		if attempt > 0 {
			return nil, fmt.Errorf("kvstore: hash slot unassigned after refresh")
		}
		if err := cc.refresh(); err != nil {
			return nil, err
		}
	}
}

// Ping round-trips every known node.
func (cc *ClusterClient) Ping() error {
	pinged := false
	for _, r := range cc.Slots() {
		c, err := cc.clientFor(r.Addr)
		if err != nil {
			return err
		}
		if err := c.Ping(); err != nil {
			return err
		}
		pinged = true
	}
	if !pinged {
		c, err := cc.anyClient()
		if err != nil {
			return err
		}
		return c.Ping()
	}
	return nil
}

// Close stops the heartbeat and closes every pooled connection.
func (cc *ClusterClient) Close() error {
	if cc.hbStop != nil {
		select {
		case <-cc.hbStop:
		default:
			close(cc.hbStop)
		}
		cc.hbWG.Wait()
	}
	cc.mu.Lock()
	conns := cc.conns
	cc.conns = make(map[string]*Client)
	cc.mu.Unlock()
	var err error
	for _, c := range conns {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Pipe returns a cluster pipeline: commands are routed to per-owner
// pipelines as they are sent, and Finish merges every reply back into
// global send order.
func (cc *ClusterClient) Pipe(width int) (Pipe, error) {
	if width < 1 {
		return nil, fmt.Errorf("kvstore: pipeline width %d, need ≥ 1", width)
	}
	return &ClusterPipeline{cc: cc, width: width, pipes: make(map[string]*Pipeline)}, nil
}

// ClusterPipeline fans a pipelined batch out across slot owners while
// preserving reply order: each command is enqueued on its owner's
// pipeline and the owner is recorded in a send-order ledger; Finish
// collects each node's replies (in that node's send order) and merges
// them back by the ledger. A MOVED reply in the results repairs the
// slot table for the next batch; the command itself is not re-executed
// — the caller sees the redirect error and re-issues the batch, the
// same contract as a broken-connection pipeline retry.
type ClusterPipeline struct {
	cc     *ClusterClient
	width  int
	pipes  map[string]*Pipeline
	order  []string // owner addr per command, in send order
	hint   int
	merged []Reply // reusable merge buffer (Reuse)
}

// Expect hints the batch's total command count; each owner pipeline is
// seeded with the full hint (an upper bound — regrowth avoided at the
// cost of over-allocation proportional to node count).
func (cp *ClusterPipeline) Expect(total int) {
	cp.hint = total
	for _, p := range cp.pipes {
		p.Expect(total)
	}
	if total > cap(cp.order) {
		grown := make([]string, len(cp.order), total)
		copy(grown, cp.order)
		cp.order = grown
	}
}

// Send routes one command to its key's owner pipeline. Keyless
// commands are rejected — there is no single node whose reply could
// take a deterministic position in the merged order.
func (cp *ClusterPipeline) Send(cmd string, args ...[]byte) error {
	id := lookupCmd(cmd)
	first := firstKeyArg(id)
	if first < 0 || len(args) <= first {
		return fmt.Errorf("kvstore: cluster pipeline cannot route keyless command %s", cmd)
	}
	slot := slotForKeyBytes(args[first])
	addr := cp.cc.ownerOf(slot)
	if addr == "" {
		if err := cp.cc.refresh(); err != nil {
			return err
		}
		if addr = cp.cc.ownerOf(slot); addr == "" {
			return fmt.Errorf("kvstore: hash slot %d unassigned", slot)
		}
	}
	p, ok := cp.pipes[addr]
	if !ok {
		c, err := cp.cc.clientFor(addr)
		if err != nil {
			return err
		}
		if p, err = c.NewPipeline(cp.width); err != nil {
			return err
		}
		if cp.hint > 0 {
			p.Expect(cp.hint)
		}
		cp.pipes[addr] = p
	}
	if err := p.Send(cmd, args...); err != nil {
		return err
	}
	cp.order = append(cp.order, addr)
	return nil
}

// Finish drains every owner pipeline and merges the replies back into
// global send order, reusing a Reuse-seeded merge buffer if present.
func (cp *ClusterPipeline) Finish() ([]Reply, error) {
	out := cp.merged
	cp.merged = nil
	return cp.FinishInto(out)
}

// FinishInto is Finish appending into dst, reusing its capacity.
func (cp *ClusterPipeline) FinishInto(dst []Reply) ([]Reply, error) {
	results := make(map[string][]Reply, len(cp.pipes))
	var firstErr error
	for addr, p := range cp.pipes {
		reps, err := p.Finish()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results[addr] = reps
	}
	out := dst[:0]
	cursor := make(map[string]int, len(results))
	for _, addr := range cp.order {
		reps := results[addr]
		i := cursor[addr]
		if i >= len(reps) {
			// A node's pipeline died mid-batch: its tail is gone.
			if firstErr == nil {
				firstErr = fmt.Errorf("kvstore: cluster pipeline lost replies from %s", addr)
			}
			break
		}
		if s, to, ok := parseMoved(reps[i]); ok {
			cp.cc.moved.Inc()
			cp.cc.setOwner(s, to)
			if firstErr == nil {
				firstErr = fmt.Errorf("kvstore: pipelined command redirected (MOVED %d %s); re-issue the batch", s, to)
			}
		}
		out = append(out, reps[i])
		cursor[addr] = i + 1
	}
	cp.order = cp.order[:0]
	// Ownership matches Pipeline.Finish: the returned slice belongs to
	// the caller; it only comes back to us through an explicit Reuse.
	cp.merged = nil
	return out, firstErr
}

// Reuse seeds the merge buffer with dst[:0] for the next batch.
func (cp *ClusterPipeline) Reuse(dst []Reply) {
	cp.merged = dst[:0]
	cp.order = cp.order[:0]
}
