package kvstore

import (
	"strings"
	"testing"
)

func TestSlotForKeyDeterministicAndBounded(t *testing.T) {
	keys := []string{"", "a", "user:1", "user:2", "shard:{7}:x", strings.Repeat("k", 300)}
	for _, k := range keys {
		s := SlotForKey(k)
		if s < 0 || s >= NumSlots {
			t.Fatalf("SlotForKey(%q) = %d, out of [0,%d)", k, s, NumSlots)
		}
		if s2 := SlotForKey(k); s2 != s {
			t.Fatalf("SlotForKey(%q) nondeterministic: %d vs %d", k, s, s2)
		}
		if sb := slotForKeyBytes([]byte(k)); sb != s {
			t.Fatalf("slotForKeyBytes(%q) = %d, SlotForKey = %d", k, sb, s)
		}
	}
}

func TestSlotForKeyHashTags(t *testing.T) {
	// Same {tag} → same slot regardless of the surrounding key.
	a, b := SlotForKey("user:{42}:name"), SlotForKey("user:{42}:email")
	if a != b {
		t.Errorf("hashtag keys map to slots %d and %d, want equal", a, b)
	}
	if got := SlotForKey("42"); got != a {
		t.Errorf("SlotForKey({42}-tagged) = %d, SlotForKey(42) = %d, want equal", a, got)
	}
	// Empty tag "{}" is not a tag: the whole key hashes.
	if SlotForKey("{}ab") == SlotForKey("{}cd") && SlotForKey("ab") != SlotForKey("cd") {
		t.Error("empty hashtag collapsed distinct keys")
	}
}

func TestSplitSlotsCoversEverySlotOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7} {
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = string(rune('a' + i))
		}
		tab, err := newSlotTable(SplitSlots(addrs))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for s := 0; s < NumSlots; s++ {
			if tab.owner[s] == "" {
				t.Fatalf("n=%d: slot %d unassigned", n, s)
			}
		}
	}
}

func TestParseSlotRanges(t *testing.T) {
	ranges, err := ParseSlotRanges("0-341@h:1, 342-682@h:2,683-1023@h:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 3 || ranges[1].Lo != 342 || ranges[1].Addr != "h:2" {
		t.Fatalf("ranges = %+v", ranges)
	}
	// Single-slot shorthand.
	one, err := ParseSlotRanges("7@h:9")
	if err != nil || one[0].Lo != 7 || one[0].Hi != 7 {
		t.Fatalf("single slot: %+v, %v", one, err)
	}
	for _, bad := range []string{"", "0-1023", "0-1024@h:1", "-1-5@h:1", "9-3@h:1", "x-y@h:1", "5@"} {
		if _, err := ParseSlotRanges(bad); err == nil {
			t.Errorf("ParseSlotRanges(%q) accepted", bad)
		}
	}
}

func TestSlotTableRejectsConflicts(t *testing.T) {
	_, err := newSlotTable([]SlotRange{
		{Lo: 0, Hi: 511, Addr: "a"},
		{Lo: 500, Hi: 1023, Addr: "b"},
	})
	if err == nil {
		t.Error("overlapping ranges with different owners accepted")
	}
	// Same owner overlapping is fine (idempotent assignment).
	if _, err := newSlotTable([]SlotRange{
		{Lo: 0, Hi: 511, Addr: "a"},
		{Lo: 500, Hi: 600, Addr: "a"},
	}); err != nil {
		t.Errorf("same-owner overlap rejected: %v", err)
	}
}

func TestSlotTableRangesRoundtrip(t *testing.T) {
	in := SplitSlots([]string{"n1", "n2", "n3"})
	tab, err := newSlotTable(in)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.ranges()
	if len(out) != len(in) {
		t.Fatalf("ranges() = %+v, want %+v", out, in)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("range %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestParseMoved(t *testing.T) {
	slot, addr, ok := parseMoved(errReply("MOVED 712 10.0.0.3:7002"))
	if !ok || slot != 712 || addr != "10.0.0.3:7002" {
		t.Fatalf("parseMoved = %d %q %v", slot, addr, ok)
	}
	for _, bad := range []Reply{
		errReply("ERR other"),
		errReply("MOVED"),
		errReply("MOVED abc h:1"),
		errReply("MOVED 9999 h:1"),
		errReply("MOVED 7 "),
		{Type: SimpleString, Str: "MOVED 7 h:1"},
	} {
		if _, _, ok := parseMoved(bad); ok {
			t.Errorf("parseMoved accepted %+v", bad)
		}
	}
}

// startSlotServer runs a server that owns only the given ranges; self
// is its advertised cluster address (distinct from the real listen
// address so tests can assert MOVED targets exactly).
func startSlotServer(t *testing.T, self string, ranges []SlotRange) (string, *Server) {
	t.Helper()
	srv := NewServer(nil)
	if err := srv.SetClusterSlots(self, ranges); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

// findKeyInSlots returns a key whose slot falls inside [lo, hi].
func findKeyInSlots(t *testing.T, lo, hi int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := "probe" + string(rune('0'+i%10)) + ":" + strings.Repeat("x", i/10%5) + string(rune('a'+i%26)) + string(rune('a'+i/26%26))
		if s := SlotForKey(k); s >= lo && s <= hi {
			return k
		}
	}
	t.Fatal("no key found in slot range")
	return ""
}

func TestServerMovedRedirect(t *testing.T) {
	// This node owns the lower half; the upper half belongs to a peer.
	ranges := []SlotRange{
		{Lo: 0, Hi: 511, Addr: "self:1"},
		{Lo: 512, Hi: 1023, Addr: "peer:2"},
	}
	addr, _ := startSlotServer(t, "self:1", ranges)
	c := dialTest(t, addr)

	local := findKeyInSlots(t, 0, 511)
	foreign := findKeyInSlots(t, 512, 1023)

	if err := c.Set(local, []byte("v")); err != nil {
		t.Fatalf("owned-slot SET failed: %v", err)
	}
	rep, err := c.Do("SET", []byte(foreign), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	slot, movedTo, ok := parseMoved(rep)
	if !ok {
		t.Fatalf("foreign-slot SET reply = %+v, want MOVED", rep)
	}
	if movedTo != "peer:2" || slot != SlotForKey(foreign) {
		t.Errorf("MOVED %d %s, want MOVED %d peer:2", slot, movedTo, SlotForKey(foreign))
	}
	// Keyless commands always run locally.
	if err := c.Ping(); err != nil {
		t.Errorf("PING in cluster mode: %v", err)
	}
	// Multi-key commands redirect if ANY key is foreign.
	rep, err = c.Do("MGET", []byte(local), []byte(foreign))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := parseMoved(rep); !ok {
		t.Errorf("MGET with one foreign key = %+v, want MOVED", rep)
	}
}

func TestServerClusterDownForUnassignedSlot(t *testing.T) {
	// Only the lower half is assigned at all.
	addr, _ := startSlotServer(t, "self:1", []SlotRange{{Lo: 0, Hi: 511, Addr: "self:1"}})
	c := dialTest(t, addr)
	orphan := findKeyInSlots(t, 512, 1023)
	rep, err := c.Do("GET", []byte(orphan))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != ErrorReply || !strings.HasPrefix(rep.Str, "CLUSTERDOWN") {
		t.Errorf("unassigned-slot GET = %+v, want CLUSTERDOWN", rep)
	}
}

func TestServerClusterSlotsReply(t *testing.T) {
	ranges := SplitSlots([]string{"n:1", "n:2", "n:3"})
	addr, _ := startSlotServer(t, "n:1", ranges)
	c := dialTest(t, addr)
	rep, err := c.Do("CLUSTER", []byte("SLOTS"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != Array || len(rep.Array) != 3 {
		t.Fatalf("CLUSTER SLOTS = %+v, want 3-element array", rep)
	}
	for i, el := range rep.Array {
		if el.Type != Array || len(el.Array) != 3 {
			t.Fatalf("entry %d = %+v, want [lo hi addr]", i, el)
		}
		if int(el.Array[0].Int) != ranges[i].Lo || int(el.Array[1].Int) != ranges[i].Hi ||
			string(el.Array[2].Bulk) != ranges[i].Addr {
			t.Errorf("entry %d = [%d %d %s], want %+v",
				i, el.Array[0].Int, el.Array[1].Int, el.Array[2].Bulk, ranges[i])
		}
	}
}

func TestServerNotInClusterMode(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	rep, err := c.Do("CLUSTER", []byte("SLOTS"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Error("CLUSTER SLOTS on a standalone server must error")
	}
}
