package kvstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pareto/internal/faultnet"
	"pareto/internal/telemetry"
)

// waitFor polls cond every millisecond until it holds or the deadline
// expires; replication is asynchronous, so almost every assertion in
// this file is an eventually-assertion.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func counterOf(reg *telemetry.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

func gaugeOf(reg *telemetry.Registry, name string) float64 {
	return reg.Snapshot().Gauges[name]
}

// startReplPrimary stands up an AOF-enabled server with fast feeder
// cadence — the shape every replication test's primary needs.
func startReplPrimary(t *testing.T) (*Server, string, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	srv := NewServer(nil)
	srv.SetTelemetry(reg)
	srv.SetReplication(ReplicationConfig{PingEvery: 10 * time.Millisecond, Poll: time.Millisecond})
	if err := srv.EnableAOF(filepath.Join(t.TempDir(), "primary.aof"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, reg
}

// startReplReplica stands up an AOF-enabled server and points it at the
// primary with test-speed reconnect behavior.
func startReplReplica(t *testing.T, primary string, opts ReplicaOptions) (*Server, string, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	srv := NewServer(nil)
	srv.SetTelemetry(reg)
	if err := srv.EnableAOF(filepath.Join(t.TempDir(), "replica.aof"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if opts.StreamTimeout == 0 {
		opts.StreamTimeout = 500 * time.Millisecond
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	if opts.MaxBackoff == 0 {
		opts.MaxBackoff = 50 * time.Millisecond
	}
	if err := srv.StartReplicaOf(primary, opts); err != nil {
		t.Fatal(err)
	}
	return srv, addr, reg
}

// hasKeys reports whether srv's engine holds k0..k(n-1) with values
// v0..v(n-1).
func hasKeys(srv *Server, n int) bool {
	for i := 0; i < n; i++ {
		rep := srv.Engine().Do("GET", []byte(fmt.Sprintf("k%d", i)))
		if rep.Type != BulkString || string(rep.Bulk) != fmt.Sprintf("v%d", i) {
			return false
		}
	}
	return true
}

func setKeys(t *testing.T, c *Client, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set k%d: %v", i, err)
		}
	}
}

// liveReplicaConn snapshots the replica session's current stream
// connection (nil while disconnected).
func liveReplicaConn(srv *Server) net.Conn {
	srv.mu.Lock()
	rs := srv.replica
	srv.mu.Unlock()
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.connected {
		return nil
	}
	return rs.conn
}

// TestReplicationFullSyncAndLiveStream is the basic happy path: a
// replica bootstraps from a full-sync snapshot, then applies the live
// stream, and both sides report coherent REPLINFO.
func TestReplicationFullSyncAndLiveStream(t *testing.T) {
	primary, paddr, preg := startReplPrimary(t)
	c, err := Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setKeys(t, c, 0, 20) // pre-existing data: arrives via the snapshot

	replica, _, rreg := startReplReplica(t, paddr, ReplicaOptions{SelfAddr: "replica-1"})
	waitFor(t, 5*time.Second, "full sync to land", func() bool { return hasKeys(replica, 20) })
	if n := counterOf(preg, "kv_repl_full_syncs_total"); n != 1 {
		t.Errorf("kv_repl_full_syncs_total = %d, want 1", n)
	}

	setKeys(t, c, 20, 40) // live data: arrives via the stream
	waitFor(t, 5*time.Second, "live stream to apply", func() bool { return hasKeys(replica, 40) })
	if n := counterOf(rreg, "kv_repl_applied_records_total"); n < 20 {
		t.Errorf("kv_repl_applied_records_total = %d, want ≥ 20", n)
	}
	waitFor(t, 5*time.Second, "lag to drain to zero", func() bool {
		return gaugeOf(rreg, "kv_repl_lag_bytes") == 0 && gaugeOf(rreg, "kv_repl_error") == 0
	})

	// Primary REPLINFO: role, durable offset, and the connected replica
	// (with its acks caught up to what was sent).
	rep, err := c.Do("REPLINFO")
	if err != nil || rep.Type != BulkString {
		t.Fatalf("REPLINFO = %v, %v", rep.Type, err)
	}
	var pi replInfo
	if err := json.Unmarshal(rep.Bulk, &pi); err != nil {
		t.Fatal(err)
	}
	if pi.Role != "primary" || len(pi.Replicas) != 1 || pi.Replicas[0].Addr != "replica-1" {
		t.Fatalf("primary REPLINFO = %+v", pi)
	}
	waitFor(t, 5*time.Second, "replica acks to catch up", func() bool {
		infos := primary.hub.snapshotInfo()
		return len(infos) == 1 && infos[0].AckedOff == infos[0].SentOff && infos[0].SentOff > int64(aofHeaderLen)
	})

	// Replica REPLINFO: role, primary address, liveness.
	rrep := replica.replInfoReply()
	var ri replInfo
	if err := json.Unmarshal(rrep.Bulk, &ri); err != nil {
		t.Fatal(err)
	}
	if ri.Role != "replica" || ri.Primary != paddr || !ri.Connected || ri.Offset <= int64(aofHeaderLen) {
		t.Fatalf("replica REPLINFO = %+v", ri)
	}
}

// TestReplicationPartialResync proves a dropped stream resumes exactly
// at the cursor — a CONTINUE handshake, not a second snapshot.
func TestReplicationPartialResync(t *testing.T) {
	_, paddr, preg := startReplPrimary(t)
	c, err := Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setKeys(t, c, 0, 10)

	replica, _, rreg := startReplReplica(t, paddr, ReplicaOptions{})
	waitFor(t, 5*time.Second, "initial sync", func() bool { return hasKeys(replica, 10) })

	// Tear the live stream mid-flight; the replica's cursor names a
	// position inside the current generation, so the reconnect must
	// CONTINUE rather than re-bootstrap.
	waitFor(t, 5*time.Second, "stream to connect", func() bool { return liveReplicaConn(replica) != nil })
	liveReplicaConn(replica).Close()

	setKeys(t, c, 10, 20)
	waitFor(t, 5*time.Second, "resynced stream to catch up", func() bool { return hasKeys(replica, 20) })
	waitFor(t, 5*time.Second, "partial sync counter", func() bool {
		return counterOf(preg, "kv_repl_partial_syncs_total") >= 1
	})
	if n := counterOf(preg, "kv_repl_full_syncs_total"); n != 1 {
		t.Errorf("full syncs = %d after reconnect, want 1 (partial resync should not snapshot)", n)
	}
	if n := counterOf(rreg, "kv_repl_reconnects_total"); n < 1 {
		t.Errorf("kv_repl_reconnects_total = %d, want ≥ 1", n)
	}
}

// TestReplicaRejectsWrites: replicas serve reads and refuse writes, so
// clients cannot diverge a replica from its primary.
func TestReplicaRejectsWrites(t *testing.T) {
	_, paddr, _ := startReplPrimary(t)
	c, err := Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setKeys(t, c, 0, 1)

	replica, raddr, _ := startReplReplica(t, paddr, ReplicaOptions{})
	waitFor(t, 5*time.Second, "sync", func() bool { return hasKeys(replica, 1) })

	rc, err := Dial(raddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got, err := rc.Get("k0"); err != nil || string(got) != "v0" {
		t.Fatalf("replica Get = %q, %v", got, err)
	}
	rep, err := rc.Do("SET", []byte("rogue"), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != ErrorReply || !strings.HasPrefix(rep.Str, "READONLY") {
		t.Fatalf("replica SET reply = %v %q, want READONLY error", rep.Type, rep.Str)
	}
	if got := replica.Engine().Do("GET", []byte("rogue")); got.Type != NullBulk {
		t.Fatal("rejected write still landed in the replica engine")
	}
}

// TestReplicaOfCommand drives the whole role lifecycle over the wire:
// REPLICAOF <addr> demotes a primary into a replica, REPLICAOF NO ONE
// promotes it back, and writes are accepted exactly when primary.
func TestReplicaOfCommand(t *testing.T) {
	_, paddr, _ := startReplPrimary(t)
	pc, err := Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	setKeys(t, pc, 0, 5)

	other := NewServer(nil)
	oaddr, err := other.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { other.Close() })
	oc, err := Dial(oaddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()

	if rep, err := oc.Do("REPLICAOF", []byte(paddr)); err != nil || rep.Err() != nil {
		t.Fatalf("REPLICAOF: %v / %v", err, rep.Err())
	}
	waitFor(t, 5*time.Second, "demoted server to sync", func() bool { return hasKeys(other, 5) })
	if rep, _ := oc.Do("SET", []byte("x"), []byte("y")); rep.Type != ErrorReply {
		t.Fatal("replica accepted a write")
	}
	if rep, err := oc.Do("REPLICAOF", []byte("NO"), []byte("ONE")); err != nil || rep.Err() != nil {
		t.Fatalf("REPLICAOF NO ONE: %v / %v", err, rep.Err())
	}
	if err := oc.Set("x", []byte("y")); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	// Re-demoting a promoted server must work (the session slot is free).
	if rep, err := oc.Do("REPLICAOF", []byte(paddr)); err != nil || rep.Err() != nil {
		t.Fatalf("second REPLICAOF: %v / %v", err, rep.Err())
	}
}

// TestReplStreamEveryPrefixTruncation mirrors
// TestAOFTornTailTruncatedOnRestart for the wire: the stream decoder is
// fed every byte prefix of a record+heartbeat stream, and at every cut
// the cursor must land exactly on the boundary of the last complete
// data record, with exactly the complete records applied and exactly
// the complete heartbeats delivered. A torn stream therefore always
// resumes with nothing skipped and nothing double-applied.
func TestReplStreamEveryPrefixTruncation(t *testing.T) {
	type sframe struct {
		b   []byte
		rec bool
	}
	frame := func(cmd string, args ...[]byte) sframe {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := WriteCommand(bw, cmd, args...); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		return sframe{b: buf.Bytes(), rec: true}
	}
	ping := func(durOff int64) sframe {
		s := fmt.Sprintf("%d", durOff)
		return sframe{b: []byte(fmt.Sprintf("*2\r\n$8\r\nREPLPING\r\n$%d\r\n%s\r\n", len(s), s))}
	}
	frames := []sframe{
		frame("SET", []byte("a"), []byte("1")),
		frame("SET", []byte("key:with:longer:name"), []byte(strings.Repeat("x", 300))),
		ping(1234),
		frame("RPUSH", []byte("l"), []byte("e1"), []byte("e2"), []byte("e3")),
		frame("SET", []byte("empty"), nil),
		ping(99999),
		frame("DEL", []byte("a")),
		frame("INCR", []byte("ctr")),
	}
	var stream []byte
	for _, f := range frames {
		stream = append(stream, f.b...)
	}

	const start = int64(7777)
	for cut := 0; cut <= len(stream); cut++ {
		applied, pings := 0, 0
		cr := &countingReader{r: bytes.NewReader(stream[:cut])}
		br := bufio.NewReaderSize(cr, 64<<10)
		off, err := replApply(cr, br, start, replStreamHandler{
			apply: func(id cmdID, cmd string, args [][]byte) error {
				if id == cmdReplPing {
					t.Fatalf("cut=%d: heartbeat reached the apply hook", cut)
				}
				applied++
				return nil
			},
			ping: func(int64) { pings++ },
		})
		if err == nil {
			t.Fatalf("cut=%d: replApply returned nil error on a finite stream", cut)
		}
		expOff, expApplied, expPings, consumed := start, 0, 0, 0
		for _, f := range frames {
			if consumed+len(f.b) > cut {
				break
			}
			consumed += len(f.b)
			if f.rec {
				expApplied++
				expOff += int64(len(f.b))
			} else {
				expPings++
			}
		}
		if off != expOff {
			t.Fatalf("cut=%d: cursor = %d, want %d (record boundary)", cut, off, expOff)
		}
		if applied != expApplied || pings != expPings {
			t.Fatalf("cut=%d: applied %d pings %d, want %d / %d", cut, applied, pings, expApplied, expPings)
		}
	}
}

// TestSemiSyncAckGate: with MinAckReplicas set, a write is acked only
// once a replica has applied it — and fails the writing connection when
// no replica can.
func TestSemiSyncAckGate(t *testing.T) {
	t.Run("timeout without replica", func(t *testing.T) {
		reg := telemetry.NewRegistry()
		srv := NewServer(nil)
		srv.SetTelemetry(reg)
		srv.SetReplication(ReplicationConfig{MinAckReplicas: 1, AckTimeout: 100 * time.Millisecond})
		if err := srv.EnableAOF(filepath.Join(t.TempDir(), "p.aof"), time.Millisecond); err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := DialOptions(addr, time.Second, Options{OpTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Set("k", []byte("v")); err == nil {
			t.Fatal("semi-sync write acked with zero replicas connected")
		}
		if n := counterOf(reg, "kv_repl_ack_timeouts_total"); n < 1 {
			t.Errorf("kv_repl_ack_timeouts_total = %d, want ≥ 1", n)
		}
	})
	t.Run("acks flow with replica", func(t *testing.T) {
		reg := telemetry.NewRegistry()
		srv := NewServer(nil)
		srv.SetTelemetry(reg)
		srv.SetReplication(ReplicationConfig{MinAckReplicas: 1, PingEvery: 10 * time.Millisecond, Poll: time.Millisecond})
		if err := srv.EnableAOF(filepath.Join(t.TempDir(), "p.aof"), time.Millisecond); err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		replica, _, _ := startReplReplica(t, addr, ReplicaOptions{SelfAddr: "r"})
		waitFor(t, 5*time.Second, "replica to register", func() bool {
			return len(srv.hub.addrs()) == 1
		})
		c, err := DialOptions(addr, time.Second, Options{OpTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		setKeys(t, c, 0, 10)
		// The semi-sync contract: by the time Set returned, the replica
		// has the data — no waitFor needed.
		if !hasKeys(replica, 10) {
			t.Fatal("write acked before the replica applied it")
		}
	})
}

// TestReplTakeoverPromotesAndServesSlots is single-failover in
// miniature: one primary owning every slot, one replica; kill the
// primary, REPLTAKEOVER the replica, and the replica must own the
// slots, accept writes, and still hold every replicated key.
func TestReplTakeoverPromotesAndServesSlots(t *testing.T) {
	primary, paddr, _ := startReplPrimary(t)
	if err := primary.SetClusterSlots(paddr, []SlotRange{{Lo: 0, Hi: NumSlots - 1, Addr: paddr}}); err != nil {
		t.Fatal(err)
	}

	rreg := telemetry.NewRegistry()
	replica := NewServer(nil)
	replica.SetTelemetry(rreg)
	if err := replica.EnableAOF(filepath.Join(t.TempDir(), "r.aof"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	raddr, err := replica.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	if err := replica.SetClusterSlots(raddr, []SlotRange{{Lo: 0, Hi: NumSlots - 1, Addr: paddr}}); err != nil {
		t.Fatal(err)
	}
	if err := replica.StartReplicaOf(paddr, ReplicaOptions{
		SelfAddr: raddr, StreamTimeout: 500 * time.Millisecond,
		RetryBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	pc, err := Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	setKeys(t, pc, 0, 10)
	waitFor(t, 5*time.Second, "replica sync", func() bool { return hasKeys(replica, 10) })

	// The primary advertises its replica on the slot ranges it owns, so
	// failover-capable clients learn the candidate while it still can.
	slotsRep, err := pc.Do("CLUSTER", []byte("SLOTS"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := parseSlotsEntries(slotsRep)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(entries[0].Replicas) != 1 || entries[0].Replicas[0] != raddr {
		t.Fatalf("CLUSTER SLOTS advertised %+v, want replica %s", entries, raddr)
	}

	primary.Kill()
	rc, err := Dial(raddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rep, err := rc.Do("REPLTAKEOVER")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != Integer || rep.Int != NumSlots {
		t.Fatalf("REPLTAKEOVER = %v %d, want %d slots moved", rep.Type, rep.Int, NumSlots)
	}
	if got, err := rc.Get("k3"); err != nil || string(got) != "v3" {
		t.Fatalf("replicated key after takeover = %q, %v", got, err)
	}
	if err := rc.Set("post", []byte("failover")); err != nil {
		t.Fatalf("write after takeover: %v", err)
	}
	if n := counterOf(rreg, "kv_repl_promotions_total"); n != 1 {
		t.Errorf("kv_repl_promotions_total = %d, want 1", n)
	}
	var ri replInfo
	info, _ := rc.Do("REPLINFO")
	if err := json.Unmarshal(info.Bulk, &ri); err != nil {
		t.Fatal(err)
	}
	if ri.Role != "primary" {
		t.Errorf("role after takeover = %q, want primary", ri.Role)
	}
}

// TestReplicaPartitionHealsAndCatchesUp: a partitioned replica turns
// sick (kv_repl_error), keeps retrying, and converges once the
// partition heals — without losing or skipping records.
func TestReplicaPartitionHealsAndCatchesUp(t *testing.T) {
	_, paddr, _ := startReplPrimary(t)
	c, err := Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setKeys(t, c, 0, 10)

	var partitioned atomic.Bool
	dialer := func(addr string, timeout time.Duration) (net.Conn, error) {
		if partitioned.Load() {
			return nil, fmt.Errorf("faultnet: partitioned from %s", addr)
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	replica, _, rreg := startReplReplica(t, paddr, ReplicaOptions{Dialer: dialer})
	waitFor(t, 5*time.Second, "initial sync", func() bool { return hasKeys(replica, 10) })

	partitioned.Store(true)
	waitFor(t, 5*time.Second, "live stream", func() bool { return liveReplicaConn(replica) != nil })
	liveReplicaConn(replica).Close()
	waitFor(t, 5*time.Second, "replica to turn sick", func() bool {
		return gaugeOf(rreg, "kv_repl_error") == 1
	})
	setKeys(t, c, 10, 20) // writes the replica cannot see yet

	partitioned.Store(false)
	waitFor(t, 5*time.Second, "healed replica to catch up", func() bool { return hasKeys(replica, 20) })
	waitFor(t, 5*time.Second, "sick gauge to clear", func() bool {
		return gaugeOf(rreg, "kv_repl_error") == 0
	})
	if n := counterOf(rreg, "kv_repl_reconnects_total"); n < 1 {
		t.Errorf("kv_repl_reconnects_total = %d, want ≥ 1", n)
	}
}

// TestReplicaStalledStreamReconnects: a stream that stalls (bytes stop
// flowing, connection stays open) must trip the replica's StreamTimeout
// and reconnect instead of trailing silently forever.
func TestReplicaStalledStreamReconnects(t *testing.T) {
	_, paddr, _ := startReplPrimary(t)
	c, err := Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setKeys(t, c, 0, 10)

	// First connection stalls every I/O op longer than StreamTimeout;
	// later dials pass clean — a hung link that a reconnect escapes.
	plan := faultnet.Plan{StallRate: 1, Stall: 700 * time.Millisecond}
	var dials atomic.Int64
	dialer := func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			return plan.Wrap(conn, 0), nil
		}
		return conn, nil
	}
	replica, _, rreg := startReplReplica(t, paddr, ReplicaOptions{
		Dialer:        dialer,
		DialTimeout:   2 * time.Second,
		StreamTimeout: 200 * time.Millisecond,
	})
	waitFor(t, 10*time.Second, "initial sync", func() bool { return hasKeys(replica, 10) })
	// New writes can only arrive through a live stream read; on the
	// stalled connection every read overshoots StreamTimeout, so seeing
	// them proves the replica dropped the link and re-dialed.
	setKeys(t, c, 10, 20)
	waitFor(t, 10*time.Second, "replica to escape the stalled stream", func() bool {
		return hasKeys(replica, 20)
	})
	if dials.Load() < 2 {
		t.Errorf("dials = %d, want ≥ 2 (stalled stream must force a reconnect)", dials.Load())
	}
	if n := counterOf(rreg, "kv_repl_stream_errors_total"); n < 1 {
		t.Errorf("kv_repl_stream_errors_total = %d, want ≥ 1", n)
	}
}

// TestClusterFailoverUnderLoad is the headline chaos test: a 3-primary
// / 3-replica semi-sync cluster under concurrent pipelined SET load
// loses a primary to a crash (Kill: unfsynced+unacked bytes vanish); a
// heartbeat client detects the death, promotes the replica, and
// reassigns the slots. Every write that was ever acknowledged must
// still be readable afterwards, and the converged cluster must serve
// every slot (no CLUSTERDOWN).
func TestClusterFailoverUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	const n = 3
	paddrs := make([]string, n)
	primaries := make([]*Server, n)
	pregs := make([]*telemetry.Registry, n)
	for i := range primaries {
		reg := telemetry.NewRegistry()
		pregs[i] = reg
		srv := NewServer(nil)
		srv.SetTelemetry(reg)
		// Semi-sync is what turns "acked writes survive the crash" from
		// likely into guaranteed: an ack requires the replica's ack.
		srv.SetReplication(ReplicationConfig{
			MinAckReplicas: 1, AckTimeout: 2 * time.Second,
			PingEvery: 10 * time.Millisecond, Poll: time.Millisecond,
		})
		if err := srv.EnableAOF(filepath.Join(t.TempDir(), fmt.Sprintf("p%d.aof", i)), time.Millisecond); err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		primaries[i] = srv
		paddrs[i] = addr
	}
	ranges := SplitSlots(paddrs)
	for i, srv := range primaries {
		if err := srv.SetClusterSlots(paddrs[i], ranges); err != nil {
			t.Fatal(err)
		}
	}

	raddrs := make([]string, n)
	replicas := make([]*Server, n)
	rregs := make([]*telemetry.Registry, n)
	for i := range replicas {
		rregs[i] = telemetry.NewRegistry()
		srv := NewServer(nil)
		srv.SetTelemetry(rregs[i])
		if err := srv.EnableAOF(filepath.Join(t.TempDir(), fmt.Sprintf("r%d.aof", i)), time.Millisecond); err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.SetClusterSlots(addr, ranges); err != nil {
			t.Fatal(err)
		}
		if err := srv.StartReplicaOf(paddrs[i], ReplicaOptions{
			SelfAddr: addr, StreamTimeout: 500 * time.Millisecond,
			RetryBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		replicas[i] = srv
		raddrs[i] = addr
	}
	for i, srv := range primaries {
		srv := srv
		waitFor(t, 5*time.Second, fmt.Sprintf("replica %d to register", i), func() bool {
			return len(srv.hub.addrs()) == 1
		})
	}

	ccReg := telemetry.NewRegistry()
	// A chaos failure is near-impossible to diagnose from the assertion
	// message alone, so when PARETO_CHAOS_SNAPSHOT names a file, a
	// failed run dumps every node's telemetry snapshot (plus the
	// failing-over client's) there for CI to upload as an artifact.
	if path := os.Getenv("PARETO_CHAOS_SNAPSHOT"); path != "" {
		t.Cleanup(func() {
			if !t.Failed() {
				return
			}
			dump := map[string]*telemetry.Snapshot{"cluster_client": ccReg.Snapshot()}
			for i := range pregs {
				dump[fmt.Sprintf("primary_%d", i)] = pregs[i].Snapshot()
				dump[fmt.Sprintf("replica_%d", i)] = rregs[i].Snapshot()
			}
			buf, err := json.MarshalIndent(dump, "", "  ")
			if err == nil {
				err = os.WriteFile(path, buf, 0o644)
			}
			if err != nil {
				t.Logf("chaos snapshot dump: %v", err)
				return
			}
			t.Logf("chaos telemetry snapshot written to %s", path)
		})
	}
	copts := ClusterOptions{
		Client: Options{
			OpTimeout: time.Second, MaxRetries: 2,
			RetryBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
			Telemetry: ccReg,
		},
		HeartbeatEvery: 20 * time.Millisecond,
		FailAfter:      80 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
		AutoFailover:   true,
		RouteDeadline:  5 * time.Second,
	}
	cc, err := DialClusterOptions(paddrs, time.Second, copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	// The candidate list must be cached before the failure exists.
	waitFor(t, 5*time.Second, "heartbeat to cache all replica lists", func() bool {
		cc.mu.Lock()
		defer cc.mu.Unlock()
		return len(cc.replicas) == n
	})

	// A second, heartbeat-less client proves convergence does not depend
	// on being the client that ran the failover: it reroutes through
	// dial errors and MOVED chases alone.
	cc2, err := DialClusterOptions(paddrs, time.Second, ClusterOptions{
		Client: Options{
			OpTimeout: time.Second, MaxRetries: 2,
			RetryBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		},
		RouteDeadline: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc2.Close() })

	// Load: three writers (two single-command, one pipelined), each
	// recording exactly the writes that were acknowledged.
	var mu sync.Mutex
	acked := make(map[string]string)
	stop := make(chan struct{})
	var postFailover atomic.Int64
	var wg sync.WaitGroup
	writer := func(id string, kv *ClusterClient) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("ha:%s:%d", id, i)
			val := fmt.Sprintf("%s-%d", id, i)
			if err := kv.Set(key, []byte(val)); err != nil {
				continue // unacked: allowed to vanish
			}
			mu.Lock()
			acked[key] = val
			mu.Unlock()
			if counterOf(ccReg, "kv_cluster_client_failovers_total") >= 1 {
				postFailover.Add(1)
			}
		}
	}
	piper := func(id string, kv *ClusterClient) {
		defer wg.Done()
		for batch := 0; ; batch++ {
			select {
			case <-stop:
				return
			default:
			}
			p, err := kv.Pipe(4)
			if err != nil {
				continue
			}
			const per = 8
			keys := make([]string, 0, per)
			sendOK := true
			for j := 0; j < per; j++ {
				key := fmt.Sprintf("ha:%s:%d:%d", id, batch, j)
				if err := p.Send("SET", []byte(key), []byte(key)); err != nil {
					sendOK = false
					break
				}
				keys = append(keys, key)
			}
			if !sendOK {
				continue
			}
			reps, err := p.Finish()
			if err != nil || len(reps) != per {
				continue // batch unacked as a whole
			}
			mu.Lock()
			for j, key := range keys {
				if reps[j].Err() == nil {
					acked[key] = key
				}
			}
			mu.Unlock()
			if counterOf(ccReg, "kv_cluster_client_failovers_total") >= 1 {
				postFailover.Add(int64(per))
			}
		}
	}
	wg.Add(3)
	go writer("w0", cc)
	go writer("w1", cc2)
	go piper("pp", cc)

	// Let the load establish, then crash a primary out from under it.
	waitFor(t, 10*time.Second, "pre-kill load", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(acked) >= 100
	})
	primaries[0].Kill()

	waitFor(t, 15*time.Second, "automatic failover + post-failover writes", func() bool {
		return counterOf(ccReg, "kv_cluster_client_failovers_total") >= 1 && postFailover.Load() >= 100
	})
	close(stop)
	wg.Wait()

	if n := counterOf(rregs[0], "kv_repl_promotions_total"); n < 1 {
		t.Errorf("kv_repl_promotions_total on promoted replica = %d, want ≥ 1", n)
	}
	if ms, ok := ccReg.Snapshot().Gauges["kv_cluster_failover_last_ms"]; !ok || ms < 0 {
		t.Errorf("kv_cluster_failover_last_ms = %v, %v", ms, ok)
	}

	// Convergence: a fresh client primed from the survivors must see
	// every slot served, none by the corpse.
	vc, err := DialClusterOptions([]string{paddrs[1], paddrs[2], raddrs[0]}, time.Second, ClusterOptions{
		Client:        Options{OpTimeout: time.Second, MaxRetries: 2, RetryBackoff: time.Millisecond},
		RouteDeadline: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vc.Close() })
	waitFor(t, 10*time.Second, "slot map convergence", func() bool {
		if err := vc.refresh(); err != nil {
			return false
		}
		for s := 0; s < NumSlots; s++ {
			if a := vc.ownerOf(s); a == "" || a == paddrs[0] {
				return false
			}
		}
		return true
	})

	// The whole point: every acknowledged write survived the crash.
	mu.Lock()
	defer mu.Unlock()
	if len(acked) < 200 {
		t.Fatalf("only %d acked writes recorded; load generator broken", len(acked))
	}
	lost := 0
	for key, want := range acked {
		got, err := vc.Get(key)
		if err != nil {
			if strings.Contains(err.Error(), "CLUSTERDOWN") {
				t.Fatalf("CLUSTERDOWN after convergence for %s: %v", key, err)
			}
			t.Fatalf("Get(%s) after failover: %v", key, err)
		}
		if string(got) != want {
			lost++
			if lost <= 5 {
				t.Errorf("acked write lost: %s = %q, want %q", key, got, want)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acked writes lost to the failover", lost, len(acked))
	}
}
