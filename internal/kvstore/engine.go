package kvstore

import (
	"runtime"
	"strconv"
	"sync"
)

// Engine is the in-memory storage engine: string and list values under
// string keys, sharded for concurrency. It is safe for concurrent use
// and usable both embedded (in-process) and behind the TCP server.
//
// Copy boundary: callers (in particular the server's pooled command
// arena) may reuse argument buffers the moment Do returns, so every
// command that retains bytes copies them into engine-owned memory
// first — keys via string(...) conversion, values via explicit copies
// in set/mset/rpush/lpush/append. Commands that only read arguments
// (INCRBY, LRANGE bounds, …) parse before returning; replies echoing
// an argument (PING/ECHO) alias it and must be consumed before the
// caller recycles its buffer.
type Engine struct {
	shards []shard
	mask   uint32
}

// Shard-count bounds: the default scales with GOMAXPROCS but never
// below the seed's fixed 16 (so single-core deployments keep the same
// lock granularity) and never above 1024 (beyond which the per-shard
// map overhead buys nothing).
const (
	minDefaultShards = 16
	maxShards        = 1024
)

type shard struct {
	mu      sync.RWMutex
	strings map[string][]byte
	lists   map[string][][]byte
}

// NewEngine creates an empty engine with the default shard count.
func NewEngine() *Engine { return NewEngineShards(0) }

// NewEngineShards creates an empty engine with n shards, rounded up to
// a power of two so shard selection is a mask, not a modulo. n ≤ 0
// selects the default: the smallest power of two ≥ 2×GOMAXPROCS,
// floored at 16 — enough shards that GOMAXPROCS writer goroutines
// rarely collide on one lock, which is what lets SET/GET throughput
// scale with cores.
func NewEngineShards(n int) *Engine {
	if n <= 0 {
		n = 2 * runtime.GOMAXPROCS(0)
		if n < minDefaultShards {
			n = minDefaultShards
		}
	}
	if n > maxShards {
		n = maxShards
	}
	n = ceilPow2(n)
	e := &Engine{shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range e.shards {
		e.shards[i].strings = make(map[string][]byte)
		e.shards[i].lists = make(map[string][][]byte)
	}
	return e
}

// NumShards returns the engine's shard count (always a power of two).
func (e *Engine) NumShards() int { return len(e.shards) }

// ceilPow2 rounds n up to the next power of two (n ≥ 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (e *Engine) shardFor(key string) *shard {
	// FNV-1a over the key selects the shard; the power-of-two shard
	// count makes selection a single AND instead of a modulo.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &e.shards[h&e.mask]
}

// Common reply constructors.
func okReply() Reply            { return Reply{Type: SimpleString, Str: "OK"} }
func intReply(n int64) Reply    { return Reply{Type: Integer, Int: n} }
func bulkReply(b []byte) Reply  { return Reply{Type: BulkString, Bulk: b} }
func nilReply() Reply           { return Reply{Type: NullBulk} }
func errReply(msg string) Reply { return Reply{Type: ErrorReply, Str: msg} }
func wrongType() Reply {
	return errReply("WRONGTYPE Operation against a key holding the wrong kind of value")
}
func wrongArgs(cmd string) Reply {
	return errReply("ERR wrong number of arguments for '" + cmd + "' command")
}
func notInteger() Reply           { return errReply("ERR value is not an integer or out of range") }
func unknownCmd(cmd string) Reply { return errReply("ERR unknown command '" + cmd + "'") }

// Do executes one command against the engine and returns its reply.
// Command names are case-insensitive, as in Redis; the lookup folds
// case without allocating, so a lowercase client costs nothing extra.
func (e *Engine) Do(cmd string, args ...[]byte) Reply {
	return e.doID(lookupCmd(cmd), cmd, args)
}

// doID executes a pre-resolved command. The server resolves the cmdID
// once per command and shares it between dispatch, telemetry
// classification, cluster-slot checks, and AOF logging.
func (e *Engine) doID(id cmdID, cmd string, args [][]byte) Reply {
	switch id {
	case cmdPing:
		if len(args) == 1 {
			return bulkReply(args[0])
		}
		return Reply{Type: SimpleString, Str: "PONG"}
	case cmdEcho:
		if len(args) != 1 {
			return wrongArgs("echo")
		}
		return bulkReply(args[0])
	case cmdSet:
		if len(args) != 2 {
			return wrongArgs("set")
		}
		return e.set(string(args[0]), args[1])
	case cmdGet:
		if len(args) != 1 {
			return wrongArgs("get")
		}
		return e.get(string(args[0]))
	case cmdMSet:
		if len(args) == 0 || len(args)%2 != 0 {
			return wrongArgs("mset")
		}
		for i := 0; i < len(args); i += 2 {
			e.set(string(args[i]), args[i+1])
		}
		return okReply()
	case cmdMGet:
		if len(args) == 0 {
			return wrongArgs("mget")
		}
		out := make([]Reply, len(args))
		for i, k := range args {
			out[i] = e.mgetOne(string(k))
		}
		return Reply{Type: Array, Array: out}
	case cmdDel:
		if len(args) == 0 {
			return wrongArgs("del")
		}
		n := int64(0)
		for _, k := range args {
			n += e.del(string(k))
		}
		return intReply(n)
	case cmdExists:
		if len(args) == 0 {
			return wrongArgs("exists")
		}
		n := int64(0)
		for _, k := range args {
			n += e.exists(string(k))
		}
		return intReply(n)
	case cmdIncr:
		if len(args) != 1 {
			return wrongArgs("incr")
		}
		return e.incrBy(string(args[0]), 1)
	case cmdIncrBy:
		if len(args) != 2 {
			return wrongArgs("incrby")
		}
		d, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil {
			return notInteger()
		}
		return e.incrBy(string(args[0]), d)
	case cmdAppend:
		if len(args) != 2 {
			return wrongArgs("append")
		}
		return e.append(string(args[0]), args[1])
	case cmdStrlen:
		if len(args) != 1 {
			return wrongArgs("strlen")
		}
		return e.strlen(string(args[0]))
	case cmdRPush:
		if len(args) < 2 {
			return wrongArgs("rpush")
		}
		return e.rpush(string(args[0]), args[1:])
	case cmdLPush:
		if len(args) < 2 {
			return wrongArgs("lpush")
		}
		return e.lpush(string(args[0]), args[1:])
	case cmdLLen:
		if len(args) != 1 {
			return wrongArgs("llen")
		}
		return e.llen(string(args[0]))
	case cmdLIndex:
		if len(args) != 2 {
			return wrongArgs("lindex")
		}
		i, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil {
			return notInteger()
		}
		return e.lindex(string(args[0]), i)
	case cmdLRange:
		if len(args) != 3 {
			return wrongArgs("lrange")
		}
		start, err1 := strconv.ParseInt(string(args[1]), 10, 64)
		stop, err2 := strconv.ParseInt(string(args[2]), 10, 64)
		if err1 != nil || err2 != nil {
			return notInteger()
		}
		return e.lrange(string(args[0]), start, stop)
	case cmdFlushDB, cmdFlushAll:
		e.Flush()
		return okReply()
	case cmdDBSize:
		return intReply(e.Size())
	default:
		// cmdNone, and the server-context commands (INFO, SAVE,
		// BGREWRITEAOF, CLUSTER) the server intercepts before engine
		// dispatch.
		return unknownCmd(cmd)
	}
}

func (e *Engine) set(key string, val []byte) Reply {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, isList := s.lists[key]; isList {
		delete(s.lists, key)
	}
	v := make([]byte, len(val))
	copy(v, val)
	s.strings[key] = v
	return okReply()
}

func (e *Engine) get(key string) Reply {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, isList := s.lists[key]; isList {
		return wrongType()
	}
	v, ok := s.strings[key]
	if !ok {
		return nilReply()
	}
	out := make([]byte, len(v))
	copy(out, v)
	return bulkReply(out)
}

// mgetOne is get with MGET's forgiving semantics: a missing key or a
// key of the wrong type yields a null bulk, never an error (as in
// Redis).
func (e *Engine) mgetOne(key string) Reply {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.strings[key]
	if !ok {
		return nilReply()
	}
	out := make([]byte, len(v))
	copy(out, v)
	return bulkReply(out)
}

func (e *Engine) del(key string) int64 {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(0)
	if _, ok := s.strings[key]; ok {
		delete(s.strings, key)
		n++
	}
	if _, ok := s.lists[key]; ok {
		delete(s.lists, key)
		n++
	}
	return n
}

func (e *Engine) exists(key string) int64 {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.strings[key]; ok {
		return 1
	}
	if _, ok := s.lists[key]; ok {
		return 1
	}
	return 0
}

// incrBy is the atomic fetch-and-increment the global barrier is built
// on (paper §IV).
func (e *Engine) incrBy(key string, delta int64) Reply {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, isList := s.lists[key]; isList {
		return wrongType()
	}
	cur := int64(0)
	if v, ok := s.strings[key]; ok {
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return notInteger()
		}
		cur = n
	}
	cur += delta
	s.strings[key] = []byte(strconv.FormatInt(cur, 10))
	return intReply(cur)
}

func (e *Engine) append(key string, val []byte) Reply {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, isList := s.lists[key]; isList {
		return wrongType()
	}
	s.strings[key] = append(s.strings[key], val...)
	return intReply(int64(len(s.strings[key])))
}

func (e *Engine) strlen(key string) Reply {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, isList := s.lists[key]; isList {
		return wrongType()
	}
	return intReply(int64(len(s.strings[key])))
}

func (e *Engine) rpush(key string, vals [][]byte) Reply {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, isStr := s.strings[key]; isStr {
		return wrongType()
	}
	l := s.lists[key]
	if len(vals) == 1 { // single-value pushes skip the arena indirection
		c := make([]byte, len(vals[0]))
		copy(c, vals[0])
		l = append(l, c)
	} else {
		l = append(l, copyVals(vals)...)
	}
	s.lists[key] = l
	return intReply(int64(len(l)))
}

// copyVals copies a batch of caller-owned argument buffers into one
// shared arena (one allocation per command instead of one per element)
// — the engine's copy-at-the-boundary contract for variadic pushes.
// Elements of one batch alias the arena but are immutable once stored,
// and lists only ever drop elements wholesale (DEL/FLUSHDB), so the
// shared backing cannot outlive its batch partially.
func copyVals(vals [][]byte) [][]byte {
	total := 0
	for _, v := range vals {
		total += len(v)
	}
	arena := make([]byte, 0, total)
	out := make([][]byte, len(vals))
	for i, v := range vals {
		start := len(arena)
		arena = append(arena, v...)
		out[i] = arena[start:len(arena):len(arena)]
	}
	return out
}

func (e *Engine) lpush(key string, vals [][]byte) Reply {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, isStr := s.strings[key]; isStr {
		return wrongType()
	}
	l := s.lists[key]
	if len(vals) == 1 {
		c := make([]byte, len(vals[0]))
		copy(c, vals[0])
		l = append([][]byte{c}, l...)
	} else {
		for _, c := range copyVals(vals) {
			l = append([][]byte{c}, l...)
		}
	}
	s.lists[key] = l
	return intReply(int64(len(l)))
}

func (e *Engine) llen(key string) Reply {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, isStr := s.strings[key]; isStr {
		return wrongType()
	}
	return intReply(int64(len(s.lists[key])))
}

func (e *Engine) lindex(key string, i int64) Reply {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, isStr := s.strings[key]; isStr {
		return wrongType()
	}
	l := s.lists[key]
	if i < 0 {
		i += int64(len(l))
	}
	if i < 0 || i >= int64(len(l)) {
		return nilReply()
	}
	out := make([]byte, len(l[i]))
	copy(out, l[i])
	return bulkReply(out)
}

func (e *Engine) lrange(key string, start, stop int64) Reply {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, isStr := s.strings[key]; isStr {
		return wrongType()
	}
	l := s.lists[key]
	n := int64(len(l))
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || n == 0 {
		return Reply{Type: Array, Array: []Reply{}}
	}
	out := make([]Reply, 0, stop-start+1)
	for i := start; i <= stop; i++ {
		c := make([]byte, len(l[i]))
		copy(c, l[i])
		out = append(out, bulkReply(c))
	}
	return Reply{Type: Array, Array: out}
}

// Flush removes every key.
func (e *Engine) Flush() {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		s.strings = make(map[string][]byte)
		s.lists = make(map[string][][]byte)
		s.mu.Unlock()
	}
}

// Size returns the total number of keys.
func (e *Engine) Size() int64 {
	var n int64
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		n += int64(len(s.strings) + len(s.lists))
		s.mu.RUnlock()
	}
	return n
}
