package kvstore

import (
	"runtime"
	"strings"
	"testing"
)

func TestLookupCmdFoldsCase(t *testing.T) {
	cases := map[string]cmdID{
		"GET": cmdGet, "get": cmdGet, "GeT": cmdGet,
		"SET": cmdSet, "set": cmdSet,
		"MSET": cmdMSet, "mget": cmdMGet,
		"INCRBY": cmdIncrBy, "incrby": cmdIncrBy,
		"BGREWRITEAOF": cmdBGRewriteAOF, "bgrewriteaof": cmdBGRewriteAOF,
		"CLUSTER": cmdCluster, "cluster": cmdCluster,
		"FLUSHALL": cmdFlushAll, "flushall": cmdFlushAll,
		"nope":                             cmdNone,
		"":                                 cmdNone,
		strings.Repeat("G", maxCmdNameLen): cmdNone, // too long, no panic
		"GETT":                             cmdNone, // prefix of nothing
	}
	for cmd, want := range cases {
		if got := lookupCmd(cmd); got != want {
			t.Errorf("lookupCmd(%q) = %v, want %v", cmd, got, want)
		}
	}
}

// The dispatch path must not allocate for case folding: the seed's
// strings.ToUpper(cmd) cost one allocation per command from any
// lowercase client, on every single operation. This is the regression
// test that keeps it dead.
func TestEngineDoLowercaseNoAlloc(t *testing.T) {
	e := NewEngine()
	e.Do("SET", []byte("allockey"), []byte("v"))
	e.Do("RPUSH", []byte("alloclist"), []byte("a"))

	key := []byte("allockey")
	missing := []byte("allocmissing")
	list := []byte("alloclist")
	cases := []struct {
		name string
		fn   func()
	}{
		{"exists lowercase", func() { e.Do("exists", key) }},
		{"llen lowercase", func() { e.Do("llen", list) }},
		{"get missing lowercase", func() { e.Do("get", missing) }},
		{"exists mixed case", func() { e.Do("ExIsTs", key) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, n)
		}
	}
}

func TestNewEngineShardsRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1},
		{2, 2},
		{3, 4},
		{5, 8},
		{16, 16},
		{100, 128},
		{1024, 1024},
		{5000, 1024}, // capped
	}
	for _, tc := range cases {
		if got := NewEngineShards(tc.in).NumShards(); got != tc.want {
			t.Errorf("NewEngineShards(%d) = %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNewEngineShardsDefaultScalesWithProcs(t *testing.T) {
	n := NewEngineShards(0).NumShards()
	if n&(n-1) != 0 {
		t.Errorf("default shard count %d is not a power of two", n)
	}
	if n < minDefaultShards {
		t.Errorf("default shard count %d below floor %d", n, minDefaultShards)
	}
	if procs := runtime.GOMAXPROCS(0); n < 2*procs && n < maxShards {
		t.Errorf("default shard count %d does not scale with GOMAXPROCS=%d", n, procs)
	}
	if NewEngine().NumShards() != n {
		t.Error("NewEngine and NewEngineShards(0) disagree on the default")
	}
}

func TestShardingPreservesSemantics(t *testing.T) {
	// The same workload against 1 shard and many shards must be
	// indistinguishable.
	single := NewEngineShards(1)
	many := NewEngineShards(64)
	for _, e := range []*Engine{single, many} {
		for i := 0; i < 200; i++ {
			k := []byte{byte('a' + i%26), byte('0' + i%10)}
			e.Do("SET", k, []byte{byte(i)})
			e.Do("INCR", append([]byte("n:"), k...))
		}
	}
	if single.Size() != many.Size() {
		t.Fatalf("sizes diverge: %d vs %d", single.Size(), many.Size())
	}
	for i := 0; i < 200; i++ {
		k := []byte{byte('a' + i%26), byte('0' + i%10)}
		a, b := single.Do("GET", k), many.Do("GET", k)
		if string(a.Bulk) != string(b.Bulk) {
			t.Fatalf("key %s: %q vs %q", k, a.Bulk, b.Bulk)
		}
	}
}

func TestKeyArgStride(t *testing.T) {
	cases := []struct {
		cmd           string
		first, stride int
	}{
		{"GET", 0, 0},
		{"SET", 0, 0},
		{"DEL", 0, 1},
		{"MGET", 0, 1},
		{"EXISTS", 0, 1},
		{"MSET", 0, 2},
		{"PING", -1, 0},
		{"INFO", -1, 0},
		{"CLUSTER", -1, 0},
		{"FLUSHALL", -1, 0},
	}
	for _, tc := range cases {
		first, stride := keyArgStride(lookupCmd(tc.cmd))
		if first != tc.first || stride != tc.stride {
			t.Errorf("keyArgStride(%s) = (%d, %d), want (%d, %d)",
				tc.cmd, first, stride, tc.first, tc.stride)
		}
	}
}

func TestCmdWritesClassification(t *testing.T) {
	writes := []string{"SET", "MSET", "DEL", "INCR", "INCRBY", "APPEND", "RPUSH", "LPUSH", "FLUSHDB", "FLUSHALL"}
	reads := []string{"GET", "MGET", "EXISTS", "STRLEN", "LRANGE", "LLEN", "PING", "ECHO", "DBSIZE", "INFO", "SAVE", "CLUSTER"}
	for _, c := range writes {
		if !cmdWrites(lookupCmd(c)) {
			t.Errorf("%s not classified as a write — it would escape the AOF", c)
		}
	}
	for _, c := range reads {
		if cmdWrites(lookupCmd(c)) {
			t.Errorf("%s classified as a write — it would bloat the AOF", c)
		}
	}
}
