package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pareto/internal/telemetry"
)

// writeAOFRecords appends n SET records to a fresh log at path and
// returns it closed (flushed and fsynced).
func writeAOFRecords(t *testing.T, path string, n int) {
	t.Helper()
	a, err := OpenAOF(path, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < n; i++ {
		last, err = a.Append("SET", [][]byte{
			[]byte(fmt.Sprintf("k%d", i)),
			[]byte(fmt.Sprintf("v%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Sync(last); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAOFReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.aof")
	writeAOFRecords(t, path, 20)
	e := NewEngine()
	n, err := ReplayAOF(path, e)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("replayed %d records, want 20", n)
	}
	for i := 0; i < 20; i++ {
		rep := e.Do("GET", []byte(fmt.Sprintf("k%d", i)))
		if string(rep.Bulk) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q after replay", i, rep.Bulk)
		}
	}
}

// A crash can cut the last record off mid-write. Replay must apply the
// complete prefix and stop cleanly — the torn record was never
// acknowledged (acknowledgment waits for fsync), so losing it is
// correct, and losing anything before it is not.
func TestAOFReplayTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.aof")
	writeAOFRecords(t, path, 10)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file at every length from "last record torn" down to
	// "half the log gone": each prefix must replay without error and
	// yield between 0 and 10 records, monotonically non-decreasing.
	prev := -1
	for cut := len(full) / 2; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e := NewEngine()
		n, err := ReplayAOF(path, e)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if n < prev {
			t.Fatalf("cut=%d: replayed %d < previous %d", cut, n, prev)
		}
		prev = n
		// Every record the replay reports must actually be present.
		for i := 0; i < n; i++ {
			if rep := e.Do("GET", []byte(fmt.Sprintf("k%d", i))); rep.Type != BulkString {
				t.Fatalf("cut=%d: k%d missing from replayed engine", cut, i)
			}
		}
	}
	if prev != 10 {
		t.Fatalf("full log replayed %d records, want 10", prev)
	}
}

func TestAOFReplayMissingFile(t *testing.T) {
	e := NewEngine()
	if _, err := ReplayAOF(filepath.Join(t.TempDir(), "nope.aof"), e); !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

// Concurrent appenders sharing one log: every Sync-acknowledged record
// must survive, and the log must replay clean. Run with -race.
func TestAOFConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.aof")
	a, err := OpenAOF(path, 500*time.Microsecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := a.Append("SET", [][]byte{
					[]byte(fmt.Sprintf("w%d:%d", w, i)),
					[]byte("x"),
				})
				if err != nil {
					errs <- err
					return
				}
				if i%10 == 9 { // group-commit barrier every 10 appends
					if err := a.Sync(seq); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	n, err := ReplayAOF(path, e)
	if err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", n, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := []byte(fmt.Sprintf("w%d:%d", w, i))
			if rep := e.Do("GET", key); rep.Type != BulkString {
				t.Fatalf("%s missing after replay", key)
			}
		}
	}
}

// An acknowledged write must be durable: once the server replies, the
// record is on disk, so a kill -9 (simulated by reading the log file
// out from under the still-running server, then appending torn-record
// garbage) loses nothing that was acked.
func TestAOFAckedWritesSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.aof")
	srv := NewServer(nil)
	if err := srv.EnableAOF(path, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dialTest(t, addr)

	const n = 200
	p, err := c.NewPipeline(32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := p.Send("SET", []byte(fmt.Sprintf("acked%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	reps, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reps {
		if r.Err() != nil {
			t.Fatalf("SET %d not acked: %v", i, r.Err())
		}
	}

	// "Crash": snapshot the log file as it exists the instant after the
	// acks, without closing the server, and tack a torn record onto the
	// end the way an interrupted write would.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img = append(img, []byte("*3\r\n$3\r\nSET\r\n$9\r\ntorn-")...)
	crashed := filepath.Join(dir, "crashed.aof")
	if err := os.WriteFile(crashed, img, 0o644); err != nil {
		t.Fatal(err)
	}

	e := NewEngine()
	if _, err := ReplayAOF(crashed, e); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rep := e.Do("GET", []byte(fmt.Sprintf("acked%d", i)))
		if string(rep.Bulk) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked%d = %q after crash replay, want v%d", i, rep.Bulk, i)
		}
	}
}

// After one unclean crash leaves a torn tail record, a restarted
// server must truncate the torn bytes before appending — otherwise
// every post-crash acked write lands behind unparseable garbage and is
// lost (or corrupted) on the *next* restart. This drives the full
// crash → restart → write → restart chain.
func TestAOFTornTailTruncatedOnRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.aof")

	// Lifetime 1 ends in a crash mid-append: 10 acked records plus a
	// record cut off partway through its payload.
	writeAOFRecords(t, path, 10)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const tornTail = "*3\r\n$3\r\nSET\r\n$9\r\ntorn-"
	intact := int64(len(img))
	img = append(img, tornTail...)
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	// Lifetime 2: restart replays the complete prefix, truncates the
	// torn tail, and acks new writes.
	srv := NewServer(nil)
	if err := srv.EnableAOF(path, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != intact {
		t.Fatalf("aof size after restart = %d, want torn tail truncated to %d", fi.Size(), intact)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialTest(t, addr)
	for i := 0; i < 5; i++ {
		if err := c.Set(fmt.Sprintf("post%d", i), []byte("after-crash")); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := srv.Close(); err != nil { // no snapshot configured: log kept intact
		t.Fatal(err)
	}

	// Lifetime 3: the log must replay end-to-end without a protocol
	// error — the torn record did not poison the bytes behind it.
	e := NewEngine()
	n, err := ReplayAOF(path, e)
	if err != nil {
		t.Fatalf("replay after append-past-torn-tail: %v", err)
	}
	if n != 15 {
		t.Fatalf("replayed %d records, want 15", n)
	}
	for i := 0; i < 10; i++ {
		if rep := e.Do("GET", []byte(fmt.Sprintf("k%d", i))); rep.Type != BulkString {
			t.Fatalf("pre-crash k%d lost", i)
		}
	}
	for i := 0; i < 5; i++ {
		if rep := e.Do("GET", []byte(fmt.Sprintf("post%d", i))); string(rep.Bulk) != "after-crash" {
			t.Fatalf("post-crash post%d = %q after replay", i, rep.Bulk)
		}
	}
}

// A rewrite that crashes between the snapshot rename and the log
// truncate must not double-apply the log on restart: the snapshot
// embeds the AOF mark it covers, and replay resumes past it. INCR and
// RPUSH are the sentinels because they are not idempotent.
func TestAOFRewriteCrashWindowNoDoubleApply(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "node.pkvs")
	path := filepath.Join(dir, "node.aof")

	e := NewEngine()
	a, err := OpenAOF(path, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	apply := func(cmd string, args ...string) { // the server's apply+log pair
		t.Helper()
		bs := make([][]byte, len(args))
		for i, s := range args {
			bs[i] = []byte(s)
		}
		if rep := e.Do(cmd, bs...); rep.Type == ErrorReply {
			t.Fatalf("%s: %s", cmd, rep.Str)
		}
		if last, err = a.Append(cmd, bs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		apply("INCR", "ctr")
	}
	apply("RPUSH", "l", "x")

	// Rewrite reaches the snapshot rename, then "crashes" before Reset:
	// the full log is still on disk next to a snapshot containing it.
	mark, err := a.DurableMark()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshotFileMark(snap, mark); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine()
	mark2, err := e2.LoadSnapshotFileMark(snap)
	if err != nil {
		t.Fatal(err)
	}
	if mark2 != mark {
		t.Fatalf("snapshot round-tripped mark %+v, want %+v", mark2, mark)
	}
	n, _, err := ReplayAOFSince(path, e2, mark2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replayed %d records the snapshot already contains", n)
	}
	if rep := e2.Do("GET", []byte("ctr")); string(rep.Bulk) != "5" {
		t.Fatalf("ctr = %q after crash-window recovery, want 5 (double-applied?)", rep.Bulk)
	}
	if rep := e2.Do("LRANGE", []byte("l"), []byte("0"), []byte("-1")); len(rep.Array) != 1 {
		t.Fatalf("list has %d elements after crash-window recovery, want 1", len(rep.Array))
	}

	// The rewrite completes this time: Reset stamps a new generation,
	// so the old snapshot's mark no longer matches and only the new
	// tail replays.
	if err := a.Reset(); err != nil {
		t.Fatal(err)
	}
	apply("INCR", "ctr") // live engine: ctr = 6
	if err := a.Sync(last); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := NewEngine()
	mark3, err := e3.LoadSnapshotFileMark(snap)
	if err != nil {
		t.Fatal(err)
	}
	n3, _, err := ReplayAOFSince(path, e3, mark3)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != 1 {
		t.Fatalf("replayed %d records from the new generation, want 1", n3)
	}
	if rep := e3.Do("GET", []byte("ctr")); string(rep.Bulk) != "6" {
		t.Fatalf("ctr = %q after post-rewrite recovery, want 6", rep.Bulk)
	}
}

// Sync's contract: a record that is already durable reports success
// even after the log later fails — the sticky error belongs to the
// records that actually lost durability, not to reply batches whose
// writes are safely on disk.
func TestAOFSyncDurableDespiteLaterError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.aof")
	a, err := OpenAOF(path, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := a.Append("SET", [][]byte{[]byte("k"), []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(seq); err != nil {
		t.Fatal(err)
	}
	// The log dies after the fsync.
	a.mu.Lock()
	a.err = errors.New("disk gone")
	a.mu.Unlock()
	if err := a.Sync(seq); err != nil {
		t.Errorf("Sync(%d) on an already-durable record = %v, want nil", seq, err)
	}
	if _, err := a.Append("SET", [][]byte{[]byte("k2"), []byte("v2")}); err == nil {
		t.Error("Append on a dead log succeeded")
	}
	if err := a.Sync(seq + 1); err == nil {
		t.Error("Sync past the failure point must surface the error")
	}
}

// Snapshot + AOF restart: a server lifetime that mixes snapshotted and
// AOF-tail state must come back byte-for-byte (engine contents, not
// file bytes — map iteration order makes snapshot images nondeterministic).
func TestServerSnapshotPlusAOFRestart(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "node.pkvs")
	aof := filepath.Join(dir, "node.aof")

	srv := NewServer(nil)
	if err := srv.EnableSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableAOF(aof, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialTest(t, addr)
	// Phase 1: writes, then SAVE → snapshot captures them, AOF truncates.
	for i := 0; i < 30; i++ {
		if err := c.Set(fmt.Sprintf("pre%d", i), []byte("snapshotted")); err != nil {
			t.Fatal(err)
		}
	}
	if rep, err := c.Do("BGREWRITEAOF"); err != nil || rep.Err() != nil {
		t.Fatalf("BGREWRITEAOF: %v %v", err, rep.Err())
	}
	if fi, err := os.Stat(aof); err != nil || fi.Size() != int64(aofHeaderLen) {
		t.Fatalf("aof after rewrite: size=%d err=%v, want header-only (%d)", fi.Size(), err, aofHeaderLen)
	}
	// Phase 2: more writes land in the AOF tail only.
	for i := 0; i < 30; i++ {
		if err := c.Set(fmt.Sprintf("post%d", i), []byte("tail")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Incr("ctr"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: snapshot loads, AOF tail replays on top.
	srv2 := NewServer(nil)
	if err := srv2.EnableSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := srv2.EnableAOF(aof, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	e := srv2.Engine()
	for i := 0; i < 30; i++ {
		if rep := e.Do("GET", []byte(fmt.Sprintf("pre%d", i))); string(rep.Bulk) != "snapshotted" {
			t.Fatalf("pre%d = %q after restart", i, rep.Bulk)
		}
		if rep := e.Do("GET", []byte(fmt.Sprintf("post%d", i))); string(rep.Bulk) != "tail" {
			t.Fatalf("post%d = %q after restart", i, rep.Bulk)
		}
	}
	if rep := e.Do("GET", []byte("ctr")); string(rep.Bulk) != "1" {
		t.Fatalf("ctr = %q after restart, want 1", rep.Bulk)
	}
}

// Group commit must batch: 1k pipelined SETs over a w-wide sync window
// may cost at most elapsed/w + 2 fsyncs (one per window plus the lead
// and tail commits), not one fsync per SET.
func TestAOFGroupCommitFsyncBound(t *testing.T) {
	const window = 5 * time.Millisecond
	path := filepath.Join(t.TempDir(), "node.aof")
	srv := NewServer(nil)
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)
	if err := srv.EnableAOF(path, window); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dialTest(t, addr)

	const n = 1000
	start := time.Now()
	p, err := c.NewPipeline(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := p.Send("SET", []byte(fmt.Sprintf("gc%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	snap := reg.Snapshot()
	fsyncs := snap.Counters["kv_aof_fsyncs_total"]
	records := snap.Counters["kv_aof_records_total"]
	if records != n {
		t.Fatalf("kv_aof_records_total = %d, want %d", records, n)
	}
	bound := int64(elapsed/window) + 2
	if fsyncs > bound {
		t.Errorf("%d fsyncs for %d pipelined SETs over %v (window %v), want ≤ %d",
			fsyncs, n, elapsed, window, bound)
	}
	if fsyncs == 0 {
		t.Error("no fsyncs recorded — acks were not made durable")
	}
}
