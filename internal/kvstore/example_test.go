package kvstore_test

import (
	"fmt"
	"time"

	"pareto/internal/kvstore"
)

// Start a store, write a partition as a list with a pipelined batch,
// and fetch it back with one LRANGE.
func ExampleClient_NewPipeline() {
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	c, err := kvstore.Dial(addr, time.Second)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	p, err := c.NewPipeline(64)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 1000; i++ {
		if err := p.Send("RPUSH", []byte("partition:0"), []byte{byte(i)}); err != nil {
			panic(err)
		}
	}
	if _, err := p.Finish(); err != nil {
		panic(err)
	}
	records, err := c.LRange("partition:0", 0, -1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("stored %d records\n", len(records))
	// Output:
	// stored 1000 records
}

// The global barrier separates pipeline phases across workers.
func ExampleBarrier() {
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	done := make(chan string, 2)
	for _, name := range []string{"worker-a", "worker-b"} {
		go func(name string) {
			c, err := kvstore.Dial(addr, time.Second)
			if err != nil {
				panic(err)
			}
			defer c.Close()
			b, err := kvstore.NewBarrier(c, "phase", 2)
			if err != nil {
				panic(err)
			}
			if err := b.Await(); err != nil {
				panic(err)
			}
			done <- name
		}(name)
	}
	<-done
	<-done
	fmt.Println("both workers passed the barrier")
	// Output:
	// both workers passed the barrier
}
