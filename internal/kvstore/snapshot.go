package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Snapshot persistence: the engine can serialize its full contents to
// a compact binary image and reload it, Redis-RDB style, so partition
// placements survive store restarts. The format is length-prefixed
// throughout and versioned.

const (
	snapshotMagic   = "PKVS"
	snapshotVersion = 1
	// Value kind tags.
	kindString byte = 1
	kindList   byte = 2
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot image.
var ErrBadSnapshot = errors.New("kvstore: bad snapshot")

// WriteSnapshot serializes every key to w. The engine remains usable
// during the write, but the snapshot is only guaranteed to be a
// consistent point-in-time image per shard (shards are locked one at a
// time, matching Redis's relaxed BGSAVE semantics under concurrent
// writers).
func (e *Engine) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	writeBytes := func(b []byte) error {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(b)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		for k, v := range s.strings {
			if err := bw.WriteByte(kindString); err != nil {
				s.mu.RUnlock()
				return err
			}
			if err := writeBytes([]byte(k)); err != nil {
				s.mu.RUnlock()
				return err
			}
			if err := writeBytes(v); err != nil {
				s.mu.RUnlock()
				return err
			}
		}
		for k, list := range s.lists {
			if err := bw.WriteByte(kindList); err != nil {
				s.mu.RUnlock()
				return err
			}
			if err := writeBytes([]byte(k)); err != nil {
				s.mu.RUnlock()
				return err
			}
			var nBuf [4]byte
			binary.LittleEndian.PutUint32(nBuf[:], uint32(len(list)))
			if _, err := bw.Write(nBuf[:]); err != nil {
				s.mu.RUnlock()
				return err
			}
			for _, el := range list {
				if err := writeBytes(el); err != nil {
					s.mu.RUnlock()
					return err
				}
			}
		}
		s.mu.RUnlock()
	}
	return bw.Flush()
}

// ReadSnapshot replaces the engine's contents with the image from r.
func (e *Engine) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReaderSize(r, 64<<10)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("%w: short magic: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: missing version", ErrBadSnapshot)
	}
	if ver != snapshotVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, ver)
	}
	readBytes := func() ([]byte, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxBulkLen {
			return nil, fmt.Errorf("%w: value of %d bytes", ErrBadSnapshot, n)
		}
		return readFullN(br, int(n))
	}
	e.Flush()
	for {
		kind, err := br.ReadByte()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		key, err := readBytes()
		if err != nil {
			return fmt.Errorf("%w: truncated key: %v", ErrBadSnapshot, err)
		}
		switch kind {
		case kindString:
			val, err := readBytes()
			if err != nil {
				return fmt.Errorf("%w: truncated value: %v", ErrBadSnapshot, err)
			}
			if rep := e.Do("SET", key, val); rep.Type == ErrorReply {
				return fmt.Errorf("%w: %s", ErrBadSnapshot, rep.Str)
			}
		case kindList:
			var nBuf [4]byte
			if _, err := io.ReadFull(br, nBuf[:]); err != nil {
				return fmt.Errorf("%w: truncated list header: %v", ErrBadSnapshot, err)
			}
			n := binary.LittleEndian.Uint32(nBuf[:])
			if n > maxArrayLen {
				return fmt.Errorf("%w: list of %d elements", ErrBadSnapshot, n)
			}
			for j := uint32(0); j < n; j++ {
				el, err := readBytes()
				if err != nil {
					return fmt.Errorf("%w: truncated list element: %v", ErrBadSnapshot, err)
				}
				if rep := e.Do("RPUSH", key, el); rep.Type == ErrorReply {
					return fmt.Errorf("%w: %s", ErrBadSnapshot, rep.Str)
				}
			}
		default:
			return fmt.Errorf("%w: unknown kind %d", ErrBadSnapshot, kind)
		}
	}
}

// SaveSnapshotFile atomically writes the snapshot to path
// (write-to-temp + rename).
func (e *Engine) SaveSnapshotFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pkvs-*")
	if err != nil {
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := e.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	return nil
}

// LoadSnapshotFile loads a snapshot from path; a missing file leaves
// the engine empty and returns os.ErrNotExist.
func (e *Engine) LoadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.ReadSnapshot(f)
}
