package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Snapshot persistence: the engine can serialize its full contents to
// a compact binary image and reload it, Redis-RDB style, so partition
// placements survive store restarts. The format is length-prefixed
// throughout and versioned.

const (
	snapshotMagic = "PKVS"
	// Version 2 adds a 16-byte AOF watermark (generation id + byte
	// offset) after the version byte: the mark of the log position this
	// snapshot supersedes, so restart replay skips records the snapshot
	// already contains. Version 1 images (no mark) still load.
	snapshotVersion   = 2
	snapshotVersionV1 = 1
	// Value kind tags.
	kindString byte = 1
	kindList   byte = 2
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot image.
var ErrBadSnapshot = errors.New("kvstore: bad snapshot")

// WriteSnapshot serializes every key to w. The engine remains usable
// during the write, but the snapshot is only guaranteed to be a
// consistent point-in-time image per shard (shards are locked one at a
// time, matching Redis's relaxed BGSAVE semantics under concurrent
// writers).
func (e *Engine) WriteSnapshot(w io.Writer) error {
	return e.WriteSnapshotMark(w, AOFMark{})
}

// WriteSnapshotMark is WriteSnapshot with an embedded AOF watermark:
// the (generation, offset) position of the command log this snapshot
// supersedes. Engines persisting without an AOF pass the zero mark.
func (e *Engine) WriteSnapshotMark(w io.Writer, mark AOFMark) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	var markBuf [16]byte
	binary.LittleEndian.PutUint64(markBuf[:8], mark.Gen)
	binary.LittleEndian.PutUint64(markBuf[8:], uint64(mark.Off))
	if _, err := bw.Write(markBuf[:]); err != nil {
		return err
	}
	writeBytes := func(b []byte) error {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(b)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		for k, v := range s.strings {
			if err := bw.WriteByte(kindString); err != nil {
				s.mu.RUnlock()
				return err
			}
			if err := writeBytes([]byte(k)); err != nil {
				s.mu.RUnlock()
				return err
			}
			if err := writeBytes(v); err != nil {
				s.mu.RUnlock()
				return err
			}
		}
		for k, list := range s.lists {
			if err := bw.WriteByte(kindList); err != nil {
				s.mu.RUnlock()
				return err
			}
			if err := writeBytes([]byte(k)); err != nil {
				s.mu.RUnlock()
				return err
			}
			var nBuf [4]byte
			binary.LittleEndian.PutUint32(nBuf[:], uint32(len(list)))
			if _, err := bw.Write(nBuf[:]); err != nil {
				s.mu.RUnlock()
				return err
			}
			for _, el := range list {
				if err := writeBytes(el); err != nil {
					s.mu.RUnlock()
					return err
				}
			}
		}
		s.mu.RUnlock()
	}
	return bw.Flush()
}

// ReadSnapshot replaces the engine's contents with the image from r.
func (e *Engine) ReadSnapshot(r io.Reader) error {
	_, err := e.ReadSnapshotMark(r)
	return err
}

// ReadSnapshotMark is ReadSnapshot returning the AOF watermark the
// image carries (the zero mark for version-1 images and for snapshots
// written without an AOF).
func (e *Engine) ReadSnapshotMark(r io.Reader) (AOFMark, error) {
	var mark AOFMark
	br := bufio.NewReaderSize(r, 64<<10)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return mark, fmt.Errorf("%w: short magic: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return mark, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return mark, fmt.Errorf("%w: missing version", ErrBadSnapshot)
	}
	switch ver {
	case snapshotVersionV1:
		// No watermark field: the zero mark (replay the whole log).
	case snapshotVersion:
		var markBuf [16]byte
		if _, err := io.ReadFull(br, markBuf[:]); err != nil {
			return mark, fmt.Errorf("%w: truncated aof mark: %v", ErrBadSnapshot, err)
		}
		mark.Gen = binary.LittleEndian.Uint64(markBuf[:8])
		mark.Off = int64(binary.LittleEndian.Uint64(markBuf[8:]))
	default:
		return mark, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, ver)
	}
	readBytes := func() ([]byte, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxBulkLen {
			return nil, fmt.Errorf("%w: value of %d bytes", ErrBadSnapshot, n)
		}
		return readFullN(br, int(n))
	}
	e.Flush()
	for {
		kind, err := br.ReadByte()
		if errors.Is(err, io.EOF) {
			return mark, nil
		}
		if err != nil {
			return mark, err
		}
		key, err := readBytes()
		if err != nil {
			return mark, fmt.Errorf("%w: truncated key: %v", ErrBadSnapshot, err)
		}
		switch kind {
		case kindString:
			val, err := readBytes()
			if err != nil {
				return mark, fmt.Errorf("%w: truncated value: %v", ErrBadSnapshot, err)
			}
			if rep := e.Do("SET", key, val); rep.Type == ErrorReply {
				return mark, fmt.Errorf("%w: %s", ErrBadSnapshot, rep.Str)
			}
		case kindList:
			var nBuf [4]byte
			if _, err := io.ReadFull(br, nBuf[:]); err != nil {
				return mark, fmt.Errorf("%w: truncated list header: %v", ErrBadSnapshot, err)
			}
			n := binary.LittleEndian.Uint32(nBuf[:])
			if n > maxArrayLen {
				return mark, fmt.Errorf("%w: list of %d elements", ErrBadSnapshot, n)
			}
			for j := uint32(0); j < n; j++ {
				el, err := readBytes()
				if err != nil {
					return mark, fmt.Errorf("%w: truncated list element: %v", ErrBadSnapshot, err)
				}
				if rep := e.Do("RPUSH", key, el); rep.Type == ErrorReply {
					return mark, fmt.Errorf("%w: %s", ErrBadSnapshot, rep.Str)
				}
			}
		default:
			return mark, fmt.Errorf("%w: unknown kind %d", ErrBadSnapshot, kind)
		}
	}
}

// SaveSnapshotFile atomically writes the snapshot to path
// (write-to-temp + fsync + rename + directory fsync).
func (e *Engine) SaveSnapshotFile(path string) error {
	return e.SaveSnapshotFileMark(path, AOFMark{})
}

// SaveSnapshotFileMark is SaveSnapshotFile with an embedded AOF
// watermark. The image is fsynced before the rename and the directory
// after it: callers truncate the AOF the moment this returns, so the
// rename must never become durable ahead of the bytes it points at —
// otherwise a power cut could leave an empty log and a missing
// snapshot.
func (e *Engine) SaveSnapshotFileMark(path string, mark AOFMark) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pkvs-*")
	if err != nil {
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := e.WriteSnapshotMark(tmp, mark); err != nil {
		tmp.Close()
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("kvstore: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry inside it is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("kvstore: snapshot dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("kvstore: snapshot dir sync: %w", err)
	}
	return nil
}

// LoadSnapshotFile loads a snapshot from path; a missing file leaves
// the engine empty and returns os.ErrNotExist.
func (e *Engine) LoadSnapshotFile(path string) error {
	_, err := e.LoadSnapshotFileMark(path)
	return err
}

// LoadSnapshotFileMark is LoadSnapshotFile returning the AOF watermark
// the image carries, for the caller to hand to ReplayAOFSince.
func (e *Engine) LoadSnapshotFileMark(path string) (AOFMark, error) {
	f, err := os.Open(path)
	if err != nil {
		return AOFMark{}, err
	}
	defer f.Close()
	return e.ReadSnapshotMark(f)
}
