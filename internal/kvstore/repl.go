package kvstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"pareto/internal/telemetry"
)

// Asynchronous primary→replica replication over the AOF record log.
//
// The AOF is already a total order of every write the primary applied,
// framed in RESP; replication streams exactly those bytes. A replica
// dials the primary and issues REPLSYNC <gen> <offset> [addr]; the
// primary answers either
//
//	+CONTINUE <gen> <offset>          — the cursor names a position in
//	                                    the live log generation: stream
//	                                    resumes right there, or
//	+FULLSYNC <gen> <offset>          — followed by one bulk string
//	                                    holding a point-in-time engine
//	                                    snapshot paired with that exact
//	                                    AOF mark (PR 6's snapshot v2
//	                                    machinery), after which the
//	                                    stream starts at the mark.
//
// From then on the connection is a one-way byte stream of AOF records
// (the feeder tails the log file, sending only *durable* bytes, so a
// replica never applies a record the primary could still lose to a
// crash), interleaved at record boundaries with REPLPING <durableOff>
// heartbeat frames that carry the primary's durable offset for lag
// accounting but are not part of the log and advance no cursor. The
// replica applies each record, tracks its cursor as (generation, byte
// offset) in the primary's log, and rides REPLACK <gen> <off> frames
// back on the same connection — the primary's ack ledger behind the
// MinAckReplicas write-gating knob and the REPLINFO lag report.
//
// A log rewrite (SAVE/BGREWRITEAOF) rotates the generation; feeders
// notice and drop the connection, and the replica's stale-generation
// cursor turns its reconnect into a full resync. Torn streams are
// harmless by construction: the replica's offset only ever advances
// past complete records (the same counting ReplayAOFSince uses), so a
// reconnect resumes exactly at the tear with nothing skipped and
// nothing double-applied.
//
// Consistency model: replication is asynchronous by default — an acked
// write is durable on the primary (group-commit fsync) but reaches
// replicas with a lag visible in kv_repl_lag_bytes. Setting
// ReplicationConfig.MinAckReplicas > 0 gates each acknowledgment on
// that many replica acks (semi-synchronous), which is what makes
// "acked writes survive primary loss + failover" a guarantee instead
// of a probability. Promotion (REPLTAKEOVER) stops the replica loop,
// flushes the local log, and — in cluster mode — reassigns every slot
// the dead primary owned to the promoted node.

// replRole is the server's replication role.
type replRole int32

const (
	rolePrimary replRole = iota
	roleReplica
)

// ReplicationConfig tunes the primary side of replication. The zero
// value means: fully asynchronous, 100ms heartbeats, 2ms feeder poll.
type ReplicationConfig struct {
	// MinAckReplicas gates every write acknowledgment on this many
	// replicas having acked the write's log offset (semi-synchronous
	// replication). 0 = fully asynchronous.
	MinAckReplicas int
	// AckTimeout bounds the semi-sync wait; on expiry the write's
	// connection fails (the client never saw an ack, so the write may
	// be re-issued). ≤ 0 = 2s.
	AckTimeout time.Duration
	// PingEvery is the feeder's heartbeat cadence on an idle stream.
	// ≤ 0 = 100ms.
	PingEvery time.Duration
	// Poll is how often a feeder re-checks the log for new durable
	// bytes. ≤ 0 = 2ms.
	Poll time.Duration
	// WriteTimeout is the feeder's per-write deadline; a replica that
	// cannot drain the stream this long is cut off. ≤ 0 = 5s.
	WriteTimeout time.Duration
}

func (c *ReplicationConfig) normalize() {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.PingEvery <= 0 {
		c.PingEvery = 100 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = 2 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
}

// ReplicaOptions tunes the replica side of replication.
type ReplicaOptions struct {
	// SelfAddr is the address this replica advertises to its primary —
	// the address CLUSTER SLOTS lists and failover promotes. Empty
	// means the replica stays anonymous (it replicates but cannot be
	// discovered for failover).
	SelfAddr string
	// DialTimeout bounds each (re)connection attempt. ≤ 0 = 2s.
	DialTimeout time.Duration
	// StreamTimeout is the longest silence (no records, no REPLPING)
	// tolerated before the replica declares the stream dead and
	// reconnects. ≤ 0 = 3s.
	StreamTimeout time.Duration
	// RetryBackoff/MaxBackoff shape the reconnect loop's capped
	// exponential backoff. ≤ 0 = 50ms / 1s.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// Dialer overrides how the primary is reached — the fault-injection
	// hook. nil = net.DialTimeout("tcp", …).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

func (o *ReplicaOptions) normalize() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.StreamTimeout <= 0 {
		o.StreamTimeout = 3 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
}

// replMetrics is the pre-resolved metric bundle for both roles; every
// field no-ops when resolved from a nil registry.
type replMetrics struct {
	// primary side
	fullSyncs    *telemetry.Counter
	partialSyncs *telemetry.Counter
	streamBytes  *telemetry.Counter // bytes fed to replicas
	feedErrors   *telemetry.Counter
	ackTimeouts  *telemetry.Counter
	replicas     *telemetry.Gauge // connected replica count
	// replica side
	appliedRecords *telemetry.Counter
	appliedBytes   *telemetry.Counter
	reconnects     *telemetry.Counter
	streamErrors   *telemetry.Counter
	promotions     *telemetry.Counter
	lag            *telemetry.Gauge // durable bytes the replica trails by
	offset         *telemetry.Gauge // replica cursor in the primary's log
	sick           *telemetry.Gauge // 1 while the replica is disconnected
}

func newReplMetrics(reg *telemetry.Registry) *replMetrics {
	return &replMetrics{
		fullSyncs:      reg.Counter("kv_repl_full_syncs_total"),
		partialSyncs:   reg.Counter("kv_repl_partial_syncs_total"),
		streamBytes:    reg.Counter("kv_repl_stream_bytes_total"),
		feedErrors:     reg.Counter("kv_repl_feed_errors_total"),
		ackTimeouts:    reg.Counter("kv_repl_ack_timeouts_total"),
		replicas:       reg.Gauge("kv_repl_replicas_connected"),
		appliedRecords: reg.Counter("kv_repl_applied_records_total"),
		appliedBytes:   reg.Counter("kv_repl_applied_bytes_total"),
		reconnects:     reg.Counter("kv_repl_reconnects_total"),
		streamErrors:   reg.Counter("kv_repl_stream_errors_total"),
		promotions:     reg.Counter("kv_repl_promotions_total"),
		lag:            reg.Gauge("kv_repl_lag_bytes"),
		offset:         reg.Gauge("kv_repl_offset_bytes"),
		sick:           reg.Gauge("kv_repl_error"),
	}
}

// replicaConn is the primary's view of one connected replica.
type replicaConn struct {
	addr  string // advertised address ("" = anonymous)
	conn  net.Conn
	gen   uint64
	sent  int64 // log offset streamed so far
	acked int64 // log offset the replica confirmed applied
	since time.Time
}

// replHub is the primary's replica registry and ack ledger. changed is
// closed and replaced on every state change so semi-sync waiters can
// select on it with a timeout (a sync.Cond cannot).
type replHub struct {
	mu       sync.Mutex
	replicas map[*replicaConn]struct{}
	changed  chan struct{}
	m        *replMetrics
}

func newReplHub() *replHub {
	return &replHub{
		replicas: make(map[*replicaConn]struct{}),
		changed:  make(chan struct{}),
	}
}

func (h *replHub) bumpLocked() {
	close(h.changed)
	h.changed = make(chan struct{})
}

func (h *replHub) register(rc *replicaConn) {
	h.mu.Lock()
	h.replicas[rc] = struct{}{}
	h.m.replicas.Set(int64(len(h.replicas)))
	h.bumpLocked()
	h.mu.Unlock()
}

func (h *replHub) unregister(rc *replicaConn) {
	h.mu.Lock()
	delete(h.replicas, rc)
	h.m.replicas.Set(int64(len(h.replicas)))
	h.bumpLocked()
	h.mu.Unlock()
}

func (h *replHub) setSent(rc *replicaConn, off int64) {
	h.mu.Lock()
	rc.sent = off
	h.mu.Unlock()
}

func (h *replHub) setAck(rc *replicaConn, gen uint64, off int64) {
	h.mu.Lock()
	if gen == rc.gen && off > rc.acked {
		rc.acked = off
		h.bumpLocked()
	}
	h.mu.Unlock()
}

// addrs lists the advertised addresses of currently connected replicas
// — the tail of the CLUSTER SLOTS entries for self-owned ranges.
func (h *replHub) addrs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for rc := range h.replicas {
		if rc.addr != "" {
			out = append(out, rc.addr)
		}
	}
	return out
}

func (h *replHub) countAckedLocked(gen uint64, off int64) int {
	n := 0
	for rc := range h.replicas {
		if rc.gen == gen && rc.acked >= off {
			n++
		}
	}
	return n
}

// waitAcked blocks until want replicas have acked log offset off in
// generation gen, or the timeout expires. The semi-sync write gate.
func (h *replHub) waitAcked(gen uint64, off int64, want int, timeout time.Duration) error {
	if want <= 0 {
		return nil
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	h.mu.Lock()
	for {
		if h.countAckedLocked(gen, off) >= want {
			h.mu.Unlock()
			return nil
		}
		ch := h.changed
		h.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return fmt.Errorf("kvstore: %d replica ack(s) for log offset %d not received within %v", want, off, timeout)
		}
		h.mu.Lock()
	}
}

// snapshotInfo captures the hub for REPLINFO.
func (h *replHub) snapshotInfo() []replicaInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]replicaInfo, 0, len(h.replicas))
	for rc := range h.replicas {
		out = append(out, replicaInfo{
			Addr:     rc.addr,
			Gen:      rc.gen,
			SentOff:  rc.sent,
			AckedOff: rc.acked,
			AgeSec:   time.Since(rc.since).Seconds(),
		})
	}
	return out
}

// writeReplPing frames one REPLPING <durOff> heartbeat and writes it to
// the stream in a single Write. Feeders only emit it when the stream is
// drained to a record boundary, so it can never land inside a record.
func writeReplPing(conn net.Conn, durOff int64) error {
	var offBuf [20]byte
	off := strconv.AppendInt(offBuf[:0], durOff, 10)
	b := make([]byte, 0, 48)
	b = append(b, "*2\r\n$8\r\nREPLPING\r\n$"...)
	b = strconv.AppendInt(b, int64(len(off)), 10)
	b = append(b, '\r', '\n')
	b = append(b, off...)
	b = append(b, '\r', '\n')
	_, err := conn.Write(b)
	return err
}

// serveReplSync turns an accepted connection into a replication stream:
// handshake (full or partial sync decision), then a feeder loop tailing
// the AOF file. It owns the connection until the stream dies.
func (s *Server) serveReplSync(conn net.Conn, br *bufio.Reader, args [][]byte) {
	m := s.replMetricsRef()
	cfg := s.replConfig()
	fail := func(msg string) {
		conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
		fmt.Fprintf(conn, "-%s\r\n", msg)
	}
	aof := s.AOF()
	if aof == nil {
		fail("ERR replication requires an AOF-enabled primary")
		return
	}
	if s.role.Load() == int32(roleReplica) {
		fail("ERR REPLSYNC against a replica (chained replication unsupported)")
		return
	}
	if len(args) < 2 {
		fail("ERR usage: REPLSYNC <gen> <offset> [addr]")
		return
	}
	gen, err1 := strconv.ParseUint(string(args[0]), 10, 64)
	off, err2 := strconv.ParseInt(string(args[1]), 10, 64)
	if err1 != nil || err2 != nil || off < 0 {
		fail("ERR bad REPLSYNC cursor")
		return
	}
	var addr string
	if len(args) >= 3 {
		addr = string(args[2])
	}

	// Full vs partial is decided under the exclusive persistence lock:
	// the snapshot image and the AOF mark it pairs with must name the
	// same instant, with no command applying between the two.
	var img []byte
	s.persistMu.Lock()
	cur := aof.Mark()
	if gen == cur.Gen && off >= int64(aofHeaderLen) && off <= cur.Off {
		s.persistMu.Unlock()
	} else {
		var buf bytes.Buffer
		err := s.engine.WriteSnapshotMark(&buf, cur)
		s.persistMu.Unlock()
		if err != nil {
			m.feedErrors.Inc()
			fail("ERR snapshot: " + err.Error())
			return
		}
		img = buf.Bytes()
		gen, off = cur.Gen, cur.Off
	}

	bw := bufio.NewWriterSize(conn, 64<<10)
	// The snapshot preamble can be large; scale the deadline up from the
	// per-chunk stream timeout.
	conn.SetWriteDeadline(time.Now().Add(10 * cfg.WriteTimeout))
	if img != nil {
		m.fullSyncs.Inc()
		fmt.Fprintf(bw, "+FULLSYNC %d %d\r\n", gen, off)
		fmt.Fprintf(bw, "$%d\r\n", len(img))
		bw.Write(img)
		bw.WriteString("\r\n")
	} else {
		m.partialSyncs.Inc()
		fmt.Fprintf(bw, "+CONTINUE %d %d\r\n", gen, off)
	}
	if err := bw.Flush(); err != nil {
		m.feedErrors.Inc()
		return
	}

	// Everything at or before the sync point is already applied on the
	// replica, so the ack ledger starts there.
	rc := &replicaConn{addr: addr, conn: conn, gen: gen, sent: off, acked: off, since: time.Now()}
	hub := s.hub
	hub.register(rc)
	defer hub.unregister(rc)

	// REPLACK frames ride back on the same connection; any read error
	// (including the replica just closing) tears the stream down.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		var cb CommandBuffer
		for {
			cmd, aargs, err := ReadCommandInto(br, &cb, MaxBulkLen)
			if err != nil {
				conn.Close()
				return
			}
			if lookupCmd(cmd) == cmdReplAck && len(aargs) >= 2 {
				g, e1 := strconv.ParseUint(string(aargs[0]), 10, 64)
				o, e2 := strconv.ParseInt(string(aargs[1]), 10, 64)
				if e1 == nil && e2 == nil {
					hub.setAck(rc, g, o)
				}
			}
		}
	}()

	// The feeder reads through its own descriptor: the appender's fd and
	// buffering are never shared, and ReadAt makes position races with
	// other feeders impossible.
	f, err := os.Open(aof.Path())
	if err != nil {
		m.feedErrors.Inc()
		conn.Close()
		<-ackDone
		return
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	sent := off
	var lastPing time.Time
	for {
		if s.isClosed() {
			break
		}
		durGen, durOff := aof.DurablePos()
		if durGen != gen {
			// Log rewritten out from under the stream: drop the
			// connection; the replica's stale-generation cursor turns its
			// reconnect into a full resync.
			break
		}
		if durOff > sent {
			n := int64(len(buf))
			if durOff-sent < n {
				n = durOff - sent
			}
			rn, rerr := f.ReadAt(buf[:n], sent)
			if rn > 0 {
				conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
				if _, werr := conn.Write(buf[:rn]); werr != nil {
					if !s.isClosed() {
						m.feedErrors.Inc()
					}
					break
				}
				sent += int64(rn)
				hub.setSent(rc, sent)
				m.streamBytes.Add(int64(rn))
				lastPing = time.Now() // flowing data proves liveness
			}
			if rerr != nil && rn == 0 {
				// The file shrank beneath a position the durable offset
				// vouched for — a rewrite racing this read. The
				// generation check exits the loop next pass; anything
				// else is genuine corruption, so bail either way.
				if g, _ := aof.DurablePos(); g == gen {
					m.feedErrors.Inc()
				}
				break
			}
			continue
		}
		if lastPing.IsZero() || time.Since(lastPing) >= cfg.PingEvery {
			conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
			if writeReplPing(conn, durOff) != nil {
				break
			}
			lastPing = time.Now()
		}
		time.Sleep(cfg.Poll)
	}
	conn.Close()
	<-ackDone
}

// replStreamHandler is the hook set replApply drives; splitting the
// stream-decoding loop from the session lets tests feed it arbitrary
// byte prefixes without a network or a server.
type replStreamHandler struct {
	preRead  func()                                        // arm a read deadline
	apply    func(id cmdID, cmd string, args [][]byte) error // one data record
	advance  func(off int64)                               // cursor moved past a record
	ping     func(durOff int64)                            // REPLPING heartbeat
	batchEnd func(off int64) error                         // read buffer drained (ack point)
}

// replApply decodes replication stream frames from br (whose bytes are
// counted by cr) starting at log offset start, dispatching records and
// heartbeats to h. The returned offset is the position just past the
// last complete *data* record — REPLPING frames consume stream bytes
// but advance no log offset — computed the same way ReplayAOFSince
// finds its truncation point, so a stream torn at any byte leaves the
// cursor on a record boundary: the record the tear landed in was never
// applied and is re-streamed whole on reconnect.
func replApply(cr *countingReader, br *bufio.Reader, start int64, h replStreamHandler) (int64, error) {
	var cb CommandBuffer
	off := start
	pos := cr.n - int64(br.Buffered())
	for {
		if h.preRead != nil {
			h.preRead()
		}
		cmd, args, err := ReadCommandInto(br, &cb, MaxBulkLen)
		if err != nil {
			return off, err
		}
		newPos := cr.n - int64(br.Buffered())
		frameLen := newPos - pos
		pos = newPos
		if id := lookupCmd(cmd); id == cmdReplPing {
			if len(args) == 1 && h.ping != nil {
				if d, perr := strconv.ParseInt(string(args[0]), 10, 64); perr == nil {
					h.ping(d)
				}
			}
		} else {
			if err := h.apply(id, cmd, args); err != nil {
				return off, err
			}
			off += frameLen
			if h.advance != nil {
				h.advance(off)
			}
		}
		if br.Buffered() == 0 && h.batchEnd != nil {
			if err := h.batchEnd(off); err != nil {
				return off, err
			}
		}
	}
}

// replicaSession is the replica side's connection-independent state:
// the primary's address, the cursor into the primary's log, and the
// liveness view REPLINFO reports.
type replicaSession struct {
	primary  string
	opts     ReplicaOptions
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu        sync.Mutex
	conn      net.Conn
	stopped   bool
	gen       uint64 // primary's log generation the cursor names
	off       int64  // byte offset applied through, in that generation
	lag       int64  // primary durable offset minus off, from heartbeats
	connected bool
	lastPing  time.Time
}

func (rs *replicaSession) shutdown() {
	rs.stopOnce.Do(func() { close(rs.stop) })
	rs.mu.Lock()
	rs.stopped = true
	if rs.conn != nil {
		rs.conn.Close()
	}
	rs.mu.Unlock()
}

// setConn tracks the live stream connection so shutdown can interrupt a
// blocked read; it refuses a new connection once stopped.
func (rs *replicaSession) setConn(c net.Conn) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.stopped && c != nil {
		return false
	}
	rs.conn = c
	return true
}

func (rs *replicaSession) cursor() (uint64, int64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.gen, rs.off
}

func (rs *replicaSession) setCursor(gen uint64, off int64) {
	rs.mu.Lock()
	rs.gen = gen
	rs.off = off
	rs.mu.Unlock()
}

// StartReplicaOf switches the server into the replica role and starts
// replicating from the primary at addr. Write commands are rejected
// with -READONLY from this point (reads keep working); REPLTAKEOVER or
// REPLICAOF NO ONE switch back. The replication loop reconnects with
// capped backoff until then. Call after EnableAOF/SetTelemetry.
func (s *Server) StartReplicaOf(addr string, opts ReplicaOptions) error {
	if addr == "" {
		return errors.New("kvstore: replica needs a primary address")
	}
	opts.normalize()
	rs := &replicaSession{primary: addr, opts: opts, stop: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("kvstore: server closed")
	}
	if s.replica != nil {
		s.mu.Unlock()
		return errors.New("kvstore: already replicating")
	}
	s.replica = rs
	s.mu.Unlock()
	s.role.Store(int32(roleReplica))
	s.replMetricsRef().sick.Set(1) // sick until the first sync lands
	rs.wg.Add(1)
	go s.replicaLoop(rs)
	return nil
}

// replicaLoop reconnects to the primary with capped exponential backoff
// until the session is shut down (promotion or server close).
func (s *Server) replicaLoop(rs *replicaSession) {
	defer rs.wg.Done()
	m := s.replMetricsRef()
	backoff := rs.opts.RetryBackoff
	for {
		select {
		case <-rs.stop:
			return
		default:
		}
		synced, err := s.replicateOnce(rs, m)
		if err == nil {
			return // clean stop
		}
		m.streamErrors.Inc()
		m.sick.Set(1)
		if synced {
			backoff = rs.opts.RetryBackoff // made progress: start over
		}
		select {
		case <-rs.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > rs.opts.MaxBackoff {
			backoff = rs.opts.MaxBackoff
		}
		m.reconnects.Inc()
	}
}

// replicateOnce runs one connection's lifetime: dial, sync handshake,
// then the apply loop until the stream dies. synced reports whether the
// handshake completed (the backoff reset signal). A nil error means the
// session was stopped on purpose.
func (s *Server) replicateOnce(rs *replicaSession, m *replMetrics) (synced bool, err error) {
	opts := rs.opts
	dial := opts.Dialer
	if dial == nil {
		dial = func(addr string, t time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, t)
		}
	}
	conn, err := dial(rs.primary, opts.DialTimeout)
	if err != nil {
		return false, err
	}
	if !rs.setConn(conn) {
		conn.Close()
		return false, nil // stopped while dialing
	}
	defer func() {
		conn.Close()
		rs.setConn(nil)
		rs.mu.Lock()
		rs.connected = false
		rs.mu.Unlock()
	}()

	gen, off := rs.cursor()
	bw := bufio.NewWriterSize(conn, 4<<10)
	conn.SetDeadline(time.Now().Add(opts.DialTimeout + opts.StreamTimeout))
	if err := WriteCommand(bw, "REPLSYNC",
		[]byte(strconv.FormatUint(gen, 10)),
		[]byte(strconv.FormatInt(off, 10)),
		[]byte(opts.SelfAddr)); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}
	cr := &countingReader{r: conn}
	br := bufio.NewReaderSize(cr, 64<<10)
	hs, err := ReadReply(br)
	if err != nil {
		return false, err
	}
	if hs.Type == ErrorReply {
		return false, fmt.Errorf("kvstore: replsync rejected: %s", hs.Str)
	}
	if hs.Type != SimpleString {
		return false, fmt.Errorf("kvstore: unexpected replsync reply %v", hs.Type)
	}
	fields := strings.Fields(hs.Str)
	if len(fields) != 3 {
		return false, fmt.Errorf("kvstore: malformed replsync reply %q", hs.Str)
	}
	sgen, e1 := strconv.ParseUint(fields[1], 10, 64)
	soff, e2 := strconv.ParseInt(fields[2], 10, 64)
	if e1 != nil || e2 != nil {
		return false, fmt.Errorf("kvstore: malformed replsync reply %q", hs.Str)
	}
	switch fields[0] {
	case "FULLSYNC":
		// The bulk snapshot follows; it can be large, so stretch the
		// deadline well past the per-frame stream timeout.
		conn.SetReadDeadline(time.Now().Add(10 * opts.StreamTimeout))
		var img Reply
		if err := ReadReplyInto(br, &img, MaxBulkLen); err != nil {
			return false, err
		}
		if img.Type != BulkString {
			return false, fmt.Errorf("kvstore: full sync image is %v, want bulk", img.Type)
		}
		if err := s.loadReplicaSnapshot(img.Bulk); err != nil {
			return false, err
		}
		rs.setCursor(sgen, soff)
	case "CONTINUE":
		rs.setCursor(sgen, soff)
	default:
		return false, fmt.Errorf("kvstore: malformed replsync reply %q", hs.Str)
	}
	conn.SetWriteDeadline(time.Time{})
	rs.mu.Lock()
	rs.connected = true
	rs.lastPing = time.Now()
	rs.mu.Unlock()
	m.sick.Set(0)
	m.offset.Set(soff)

	laof := s.AOF()
	var pendingSeq uint64
	sendAck := func() error {
		g, o := rs.cursor()
		conn.SetWriteDeadline(time.Now().Add(opts.StreamTimeout))
		if err := WriteCommand(bw, "REPLACK",
			[]byte(strconv.FormatUint(g, 10)),
			[]byte(strconv.FormatInt(o, 10))); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := sendAck(); err != nil { // prime the primary's ack ledger
		return true, err
	}
	h := replStreamHandler{
		preRead: func() { conn.SetReadDeadline(time.Now().Add(opts.StreamTimeout)) },
		apply: func(id cmdID, cmd string, args [][]byte) error {
			// Same persistence discipline as the primary's write path:
			// shared lock across apply + local append, so a local rewrite
			// can never snapshot between the two.
			s.persistMu.RLock()
			rep := s.engine.doID(id, cmd, args)
			var seq uint64
			var aerr error
			if rep.Type != ErrorReply && laof != nil && cmdWrites(id) {
				seq, aerr = laof.Append(cmd, args)
			}
			s.persistMu.RUnlock()
			if rep.Type == ErrorReply {
				// The primary applied this record cleanly; failing here
				// means divergence. Reset the cursor so the reconnect
				// resynchronizes from a fresh snapshot.
				rs.setCursor(0, 0)
				return fmt.Errorf("kvstore: replica apply %s diverged: %s", cmd, rep.Str)
			}
			if aerr != nil {
				return aerr
			}
			if seq > 0 {
				pendingSeq = seq
			}
			m.appliedRecords.Inc()
			return nil
		},
		advance: func(off int64) {
			rs.mu.Lock()
			delta := off - rs.off
			rs.off = off
			if rs.lag -= delta; rs.lag < 0 {
				rs.lag = 0
			}
			lag := rs.lag
			rs.mu.Unlock()
			m.appliedBytes.Add(delta)
			m.offset.Set(off)
			m.lag.Set(lag)
		},
		ping: func(durOff int64) {
			rs.mu.Lock()
			lag := durOff - rs.off
			if lag < 0 {
				lag = 0
			}
			rs.lag = lag
			rs.lastPing = time.Now()
			rs.mu.Unlock()
			m.lag.Set(lag)
		},
		batchEnd: func(off int64) error {
			if pendingSeq > 0 {
				err := laof.Sync(pendingSeq)
				pendingSeq = 0
				if err != nil {
					return err
				}
			}
			return sendAck()
		},
	}
	_, err = replApply(cr, br, soff, h)
	select {
	case <-rs.stop:
		return true, nil // stopped on purpose; the read error is ours
	default:
	}
	return true, err
}

// loadReplicaSnapshot replaces the engine contents with a full-sync
// image and restarts local persistence from it: the old local log
// predates the image and must never replay over it, so when a snapshot
// path is configured the image is persisted with the post-reset log
// mark, and the log is truncated either way.
func (s *Server) loadReplicaSnapshot(img []byte) error {
	s.mu.Lock()
	aof := s.aof
	snapPath := s.snapshotPath
	s.mu.Unlock()
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if _, err := s.engine.ReadSnapshotMark(bytes.NewReader(img)); err != nil {
		return err
	}
	var mark AOFMark
	if aof != nil {
		m, err := aof.DurableMark()
		if err != nil {
			return err
		}
		mark = m
	}
	if snapPath != "" {
		if err := s.engine.SaveSnapshotFileMark(snapPath, mark); err != nil {
			return err
		}
	}
	if aof != nil {
		if err := aof.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// PromoteToPrimary stops replication and switches the server to the
// primary role; its local log is flushed durable first so nothing it
// applied as a replica can be lost to a crash immediately after. With
// takeover set and cluster mode enabled, every slot the old primary
// owned is reassigned to this server — the REPLTAKEOVER failover step —
// and the number of slots moved is returned.
func (s *Server) PromoteToPrimary(takeover bool) (int, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	s.mu.Lock()
	rs := s.replica
	s.mu.Unlock()
	if rs == nil {
		return 0, errors.New("kvstore: not a replica")
	}
	rs.shutdown()
	rs.wg.Wait()
	s.mu.Lock()
	aof := s.aof
	cl := s.cluster
	s.replica = nil
	s.mu.Unlock()
	if aof != nil {
		s.persistMu.Lock()
		_, err := aof.DurableMark()
		s.persistMu.Unlock()
		if err != nil {
			// The log is sick (gauge already raised); keep promoting —
			// availability is the whole point of failover.
			err = nil
		}
	}
	moved := 0
	if takeover && cl != nil {
		for {
			old := cl.table.Load()
			nt, n := old.reassign(rs.primary, cl.self)
			if cl.table.CompareAndSwap(old, nt) {
				moved = n
				break
			}
		}
		s.updateSlotsServed(cl)
	}
	s.role.Store(int32(rolePrimary))
	m := s.replMetricsRef()
	m.promotions.Inc()
	m.sick.Set(0)
	m.lag.Set(0)
	return moved, nil
}

// replicaInfo is one connected replica in a primary's REPLINFO report.
type replicaInfo struct {
	Addr     string  `json:"addr"`
	Gen      uint64  `json:"gen"`
	SentOff  int64   `json:"sent_off"`
	AckedOff int64   `json:"acked_off"`
	AgeSec   float64 `json:"age_sec"`
}

// replInfo is the REPLINFO reply: the server's replication state as one
// JSON document (matching INFO's convention).
type replInfo struct {
	Role          string        `json:"role"`
	Primary       string        `json:"primary,omitempty"`
	Gen           uint64        `json:"gen"`
	Offset        int64         `json:"offset"`
	DurableOffset int64         `json:"durable_offset,omitempty"`
	LagBytes      int64         `json:"lag_bytes"`
	Connected     bool          `json:"connected"`
	LastPingMs    int64         `json:"last_ping_ms,omitempty"`
	Replicas      []replicaInfo `json:"replicas,omitempty"`
}

func (s *Server) replInfoReply() Reply {
	var info replInfo
	if s.role.Load() == int32(roleReplica) {
		s.mu.Lock()
		rs := s.replica
		s.mu.Unlock()
		info.Role = "replica"
		if rs != nil {
			rs.mu.Lock()
			info.Primary = rs.primary
			info.Gen = rs.gen
			info.Offset = rs.off
			info.LagBytes = rs.lag
			info.Connected = rs.connected
			if !rs.lastPing.IsZero() {
				info.LastPingMs = time.Since(rs.lastPing).Milliseconds()
			}
			rs.mu.Unlock()
		}
	} else {
		info.Role = "primary"
		info.Connected = true
		if aof := s.AOF(); aof != nil {
			mark := aof.Mark()
			_, dur := aof.DurablePos()
			info.Gen = mark.Gen
			info.Offset = mark.Off
			info.DurableOffset = dur
		}
		info.Replicas = s.hub.snapshotInfo()
	}
	b, err := json.Marshal(&info)
	if err != nil {
		return errReply("ERR " + err.Error())
	}
	return bulkReply(b)
}
