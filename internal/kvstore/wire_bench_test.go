package kvstore

import (
	"bufio"
	"bytes"
	"io"
	"testing"
	"time"
)

// Wire/data-plane benchmarks: parsing and framing in isolation, then
// full client↔server round trips over loopback TCP. The RPUSH pair
// (per-record vs batched variadic) is the microcosm of the bulk
// shipping overhaul — same list contents, O(records) vs
// O(records/chunk) commands.

func benchServerClient(b *testing.B) *Client {
	b.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// commandWire frames one command into raw bytes.
func commandWire(b *testing.B, name string, args ...[]byte) []byte {
	b.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteCommand(w, name, args...); err != nil {
		b.Fatal(err)
	}
	w.Flush()
	return buf.Bytes()
}

// BenchmarkWriteCommand measures framing cost alone: a 3-arg SET into
// a discarded writer. The pooled framer must not allocate.
func BenchmarkWriteCommand(b *testing.B) {
	w := bufio.NewWriter(io.Discard)
	key := []byte("bench:key")
	val := bytes.Repeat([]byte("v"), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteCommand(w, "SET", key, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadCommand is the seed parse path: fresh argument slices
// per command.
func BenchmarkReadCommand(b *testing.B) {
	wire := commandWire(b, "SET", []byte("bench:key"), bytes.Repeat([]byte("v"), 64))
	rd := bytes.NewReader(wire)
	br := bufio.NewReader(rd)
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(wire)
		br.Reset(rd)
		if _, _, err := ReadCommand(br); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadCommandInto is the pooled parse path: one reusable
// arena across all commands. Steady state must be allocation-free.
func BenchmarkReadCommandInto(b *testing.B) {
	wire := commandWire(b, "SET", []byte("bench:key"), bytes.Repeat([]byte("v"), 64))
	rd := bytes.NewReader(wire)
	br := bufio.NewReader(rd)
	var cb CommandBuffer
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(wire)
		br.Reset(rd)
		if _, _, err := ReadCommandInto(br, &cb, MaxBulkLen); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadReply / BenchmarkReadReplyInto: same contrast on the
// client's reply parse path, over a 64-byte bulk string.
func BenchmarkReadReply(b *testing.B) {
	wire := []byte("$64\r\n" + string(bytes.Repeat([]byte("v"), 64)) + "\r\n")
	rd := bytes.NewReader(wire)
	br := bufio.NewReader(rd)
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(wire)
		br.Reset(rd)
		if _, err := ReadReply(br); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadReplyInto(b *testing.B) {
	wire := []byte("$64\r\n" + string(bytes.Repeat([]byte("v"), 64)) + "\r\n")
	rd := bytes.NewReader(wire)
	br := bufio.NewReader(rd)
	var rep Reply
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(wire)
		br.Reset(rd)
		if err := ReadReplyInto(br, &rep, MaxBulkLen); err != nil {
			b.Fatal(err)
		}
	}
}

// runPipelined drives one command per op through a width-128 pipeline,
// finishing (and recycling the reply slice) every batch.
func runPipelined(b *testing.B, c *Client, send func(p *Pipeline, i int) error) {
	b.Helper()
	p, err := c.NewPipeline(128)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 1024
	reps := make([]Reply, 0, batch)
	for done := 0; done < b.N; {
		n := batch
		if b.N-done < n {
			n = b.N - done
		}
		p.Reuse(reps)
		for j := 0; j < n; j++ {
			if err := send(p, done+j); err != nil {
				b.Fatal(err)
			}
		}
		out, err := p.Finish()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range out {
			if err := r.Err(); err != nil {
				b.Fatal(err)
			}
		}
		reps = out[:0]
		done += n
	}
}

// BenchmarkPipelinedSET: 64-byte SETs over loopback, pooled end to end.
func BenchmarkPipelinedSET(b *testing.B) {
	c := benchServerClient(b)
	key := []byte("bench:set")
	val := bytes.Repeat([]byte("v"), 64)
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	b.ResetTimer()
	runPipelined(b, c, func(p *Pipeline, _ int) error {
		return p.Send("SET", key, val)
	})
}

// BenchmarkPipelinedGET: 64-byte GETs over loopback; reply slot
// recycling keeps the bulk buffer alive across ops.
func BenchmarkPipelinedGET(b *testing.B) {
	c := benchServerClient(b)
	if err := c.Set("bench:get", bytes.Repeat([]byte("v"), 64)); err != nil {
		b.Fatal(err)
	}
	key := []byte("bench:get")
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	runPipelined(b, c, func(p *Pipeline, _ int) error {
		return p.Send("GET", key)
	})
}

// benchRecord matches the distrib sketch record size (4-byte index +
// 8×8-byte minhash sketch).
const benchRecordSize = 68

// BenchmarkRPUSHPerRecord is the seed shipping shape: one RPUSH
// command per record, pipelined.
func BenchmarkRPUSHPerRecord(b *testing.B) {
	c := benchServerClient(b)
	key := []byte("bench:list")
	rec := bytes.Repeat([]byte("r"), benchRecordSize)
	if _, err := c.Del(string(key)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchRecordSize)
	b.ReportAllocs()
	b.ResetTimer()
	runPipelined(b, c, func(p *Pipeline, _ int) error {
		return p.Send("RPUSH", key, rec)
	})
}

// BenchmarkRPUSHBatched is the overhauled shape: records ride
// many-per-command in chunked variadic RPUSHes (1 MiB payload cap), so
// commands, replies, and engine dispatches drop by the chunk factor.
func BenchmarkRPUSHBatched(b *testing.B) {
	c := benchServerClient(b)
	key := []byte("bench:list")
	rec := bytes.Repeat([]byte("r"), benchRecordSize)
	if _, err := c.Del(string(key)); err != nil {
		b.Fatal(err)
	}
	p, err := c.NewPipeline(128)
	if err != nil {
		b.Fatal(err)
	}
	perCmd := (1 << 20) / benchRecordSize
	args := make([][]byte, 1, perCmd+1)
	args[0] = key
	reps := make([]Reply, 0, 8)
	b.SetBytes(benchRecordSize)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := perCmd
		if b.N-done < n {
			n = b.N - done
		}
		args = args[:1]
		for j := 0; j < n; j++ {
			args = append(args, rec)
		}
		p.Reuse(reps)
		if err := p.Send("RPUSH", args...); err != nil {
			b.Fatal(err)
		}
		out, err := p.Finish()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range out {
			if err := r.Err(); err != nil {
				b.Fatal(err)
			}
		}
		reps = out[:0]
		done += n
	}
}
