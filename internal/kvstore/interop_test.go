package kvstore

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// The wire-compatibility contract: the pooled/zero-copy overhaul must
// keep RESP framing byte-identical, so a pre-overhaul peer and a
// post-overhaul peer interoperate in both directions. The "existing"
// peer on each side is represented by hand-written raw RESP bytes —
// exactly what the seed implementation put on (and expected from) the
// wire.

// TestWriteCommandGoldenBytes pins the client's command framing to the
// seed encoding, byte for byte.
func TestWriteCommandGoldenBytes(t *testing.T) {
	cases := []struct {
		name string
		args [][]byte
		wire string
	}{
		{"SET", [][]byte{[]byte("k"), []byte("v")}, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"},
		{"PING", nil, "*1\r\n$4\r\nPING\r\n"},
		{"RPUSH", [][]byte{[]byte("list"), []byte("a"), []byte(""), []byte("ccc")},
			"*5\r\n$5\r\nRPUSH\r\n$4\r\nlist\r\n$1\r\na\r\n$0\r\n\r\n$3\r\nccc\r\n"},
		{"GET", [][]byte{[]byte("a key with \r\n inside")},
			"*2\r\n$3\r\nGET\r\n$20\r\na key with \r\n inside\r\n"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteCommand(w, c.name, c.args...); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		if buf.String() != c.wire {
			t.Errorf("%s framed as %q, want %q", c.name, buf.String(), c.wire)
		}
	}
}

// TestServerSpeaksToExistingClient drives the new server with a raw
// byte stream a seed client would send — including a pipelined batch —
// and asserts the raw reply bytes are exactly what the seed client
// expects to parse.
func TestServerSpeaksToExistingClient(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// A pipelined batch: SET, GET, RPUSH ×2 (variadic), LRANGE, MGET.
	raw := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n" +
		"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n" +
		"*4\r\n$5\r\nRPUSH\r\n$1\r\nl\r\n$1\r\na\r\n$1\r\nb\r\n" +
		"*4\r\n$6\r\nLRANGE\r\n$1\r\nl\r\n$1\r\n0\r\n$2\r\n-1\r\n" +
		"*3\r\n$4\r\nMGET\r\n$1\r\nk\r\n$4\r\nnope\r\n"
	if _, err := conn.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n" +
		"$1\r\nv\r\n" +
		":2\r\n" +
		"*2\r\n$1\r\na\r\n$1\r\nb\r\n" +
		"*2\r\n$1\r\nv\r\n$-1\r\n"
	got := make([]byte, len(want))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("reading replies: %v (got %q so far)", err, got)
	}
	if string(got) != want {
		t.Errorf("raw replies %q, want %q", got, want)
	}
}

// TestClientSpeaksToExistingServer points the new client at a scripted
// raw-RESP server (the seed server's exact reply bytes) and asserts
// commands frame and replies parse as before.
func TestClientSpeaksToExistingServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wantCmd := "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		got := make([]byte, len(wantCmd))
		if _, err := io.ReadFull(conn, got); err != nil {
			done <- err
			return
		}
		if string(got) != wantCmd {
			t.Errorf("server saw %q, want %q", got, wantCmd)
		}
		_, err = conn.Write([]byte("$5\r\nhello\r\n"))
		done <- err
	}()
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	val, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "hello" {
		t.Errorf("client parsed %q, want %q", val, "hello")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
