package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func populatedEngine() *Engine {
	e := NewEngine()
	for i := 0; i < 50; i++ {
		e.Do("SET", []byte(fmt.Sprintf("str%d", i)), []byte(fmt.Sprintf("value-%d", i)))
	}
	for i := 0; i < 10; i++ {
		key := []byte(fmt.Sprintf("list%d", i))
		for j := 0; j < 20; j++ {
			e.Do("RPUSH", key, []byte{byte(i), byte(j), 0, '\r', '\n'})
		}
	}
	e.Do("SET", []byte("empty"), nil)
	e.Do("INCR", []byte("counter"))
	return e
}

func enginesEqual(t *testing.T, a, b *Engine) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("sizes %d vs %d", a.Size(), b.Size())
	}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("str%d", i))
		ra, rb := a.Do("GET", k), b.Do("GET", k)
		if !bytes.Equal(ra.Bulk, rb.Bulk) {
			t.Fatalf("key %s: %q vs %q", k, ra.Bulk, rb.Bulk)
		}
	}
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("list%d", i))
		ra := a.Do("LRANGE", k, []byte("0"), []byte("-1"))
		rb := b.Do("LRANGE", k, []byte("0"), []byte("-1"))
		if len(ra.Array) != len(rb.Array) {
			t.Fatalf("list %s: %d vs %d elements", k, len(ra.Array), len(rb.Array))
		}
		for j := range ra.Array {
			if !bytes.Equal(ra.Array[j].Bulk, rb.Array[j].Bulk) {
				t.Fatalf("list %s element %d differs", k, j)
			}
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	src := populatedEngine()
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewEngine()
	dst.Do("SET", []byte("stale"), []byte("gone")) // must be flushed
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if rep := dst.Do("GET", []byte("stale")); rep.Type != NullBulk {
		t.Error("stale key survived snapshot load")
	}
	enginesEqual(t, src, dst)
}

func TestSnapshotFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.pkvs")
	src := populatedEngine()
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("%d files in snapshot dir, want 1", len(entries))
	}
	dst := NewEngine()
	if err := dst.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	enginesEqual(t, src, dst)
}

func TestSnapshotLoadMissingFile(t *testing.T) {
	e := NewEngine()
	err := e.LoadSnapshotFile(filepath.Join(t.TempDir(), "nope.pkvs"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestSnapshotCorruptImages(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("PKVS\x09"),                       // bad version
		[]byte("PKVS\x01\x07"),                   // unknown kind
		[]byte("PKVS\x01\x01\x05\x00\x00\x00ab"), // truncated key
		append([]byte("PKVS\x01\x01\x02\x00\x00\x00ab"), 0xff, 0xff, 0xff, 0x7f), // oversized value
	}
	for i, img := range cases {
		e := NewEngine()
		if err := e.ReadSnapshot(bytes.NewReader(img)); err == nil {
			t.Errorf("case %d: corrupt snapshot accepted", i)
		}
	}
}

func TestServerSnapshotPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node0.pkvs")

	// First lifetime: write data, SAVE explicitly, then Close (which
	// also saves).
	srv := NewServer(nil)
	if err := srv.EnableSnapshot(path); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("persisted", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RPush("plist", []byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Do("SAVE")
	if err != nil || rep.Err() != nil {
		t.Fatalf("SAVE: %v %v", err, rep.Err())
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Second lifetime: the data must come back.
	srv2 := NewServer(nil)
	if err := srv2.EnableSnapshot(path); err != nil {
		t.Fatal(err)
	}
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	c2, err := Dial(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.Get("persisted")
	if err != nil || string(got) != "yes" {
		t.Fatalf("persisted = %q, %v", got, err)
	}
	els, err := c2.LRange("plist", 0, -1)
	if err != nil || len(els) != 2 || string(els[0]) != "a" {
		t.Fatalf("plist = %q, %v", els, err)
	}
}

func TestServerSaveWithoutSnapshotConfigured(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	rep, err := c.Do("SAVE")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Error("SAVE without configuration must error")
	}
}

func BenchmarkSnapshotWrite(b *testing.B) {
	e := NewEngine()
	payload := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 1000; i++ {
		e.Do("RPUSH", []byte("bulk"), payload)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
