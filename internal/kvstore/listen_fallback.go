//go:build !linux

package kvstore

import "net"

// listenN on platforms without a portable SO_REUSEPORT path: one
// listener, which ListenN shares across n accept goroutines. The
// accept queue is single but the accept loops still parallelize the
// post-accept work (wrapper, bookkeeping, goroutine spawn).
func listenN(addr string, n int) ([]net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return []net.Listener{ln}, nil
}
