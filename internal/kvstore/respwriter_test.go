package kvstore

import (
	"bufio"
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// goldenReplyBytes renders replies through the golden WriteReply
// encoder (the framing contract interop_test pins against real Redis).
func goldenReplyBytes(t *testing.T, replies ...Reply) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	for _, r := range replies {
		if err := WriteReply(bw, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// respWriter must produce byte-identical framing to WriteReply for
// every reply shape — the golden encoder is the compatibility contract
// (interop_test pins it against real Redis clients).
func TestRESPWriterMatchesWriteReply(t *testing.T) {
	big := bytes.Repeat([]byte("Z"), respZeroCopyMin+100) // forces the zero-copy path
	replies := []Reply{
		okReply(),
		{Type: SimpleString, Str: "PONG"},
		errReply("ERR boom"),
		intReply(0),
		intReply(-42),
		intReply(1 << 40),
		nilReply(),
		bulkReply(nil),
		bulkReply([]byte("")),
		bulkReply([]byte("short")),
		bulkReply(big),
		{Type: Array, Array: []Reply{intReply(1), bulkReply(big), nilReply()}},
		{Type: Array, Array: nil},
	}
	want := goldenReplyBytes(t, replies...)
	for _, forceCopy := range []bool{false, true} {
		var got bytes.Buffer
		rw := newRESPWriter(&got)
		for _, r := range replies {
			rw.writeReply(r, forceCopy)
		}
		n, err := rw.flush()
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(got.Len()) {
			t.Errorf("forceCopy=%v: flush reported %d bytes, wrote %d", forceCopy, n, got.Len())
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("forceCopy=%v: writer output diverges from WriteReply\n got %d bytes\nwant %d bytes",
				forceCopy, got.Len(), len(want))
		}
	}
}

func TestRESPWriterInterleavedSmallAndLarge(t *testing.T) {
	// Alternate below/above the zero-copy threshold so the segment list
	// is exercised with spans on both sides of every boundary.
	var replies []Reply
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			replies = append(replies, bulkReply([]byte(fmt.Sprintf("small-%d", i))))
		} else {
			replies = append(replies, bulkReply(bytes.Repeat([]byte{byte('A' + i%26)}, respZeroCopyMin+i)))
		}
	}
	want := goldenReplyBytes(t, replies...)
	var got bytes.Buffer
	rw := newRESPWriter(&got)
	for _, r := range replies {
		rw.writeReply(r, false)
	}
	if _, err := rw.flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("interleaved writev output diverges from WriteReply")
	}
	// The writer must be reusable after flush.
	got.Reset()
	rw.writeReply(okReply(), false)
	if _, err := rw.flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), goldenReplyBytes(t, okReply())) {
		t.Error("writer not reusable after flush")
	}
}

// pending() must agree exactly with the bytes a flush writes — it is
// maintained as a running counter (O(1) per query; the server asks
// after every command) rather than recomputed from the segment list.
func TestRESPWriterPendingCounter(t *testing.T) {
	var sink bytes.Buffer
	rw := newRESPWriter(&sink)
	big := bytes.Repeat([]byte("z"), respZeroCopyMin*4) // zero-copy path
	for round := 0; round < 3; round++ {                // counter must survive reuse
		if got := rw.pending(); got != 0 {
			t.Fatalf("round %d: pending = %d before any reply, want 0", round, got)
		}
		replies := []Reply{
			okReply(),
			bulkReply(big),
			intReply(42),
			bulkReply([]byte("small")),
			{Type: Array, Array: []Reply{bulkReply(big), nilReply()}},
		}
		for _, r := range replies {
			rw.writeReply(r, false)
		}
		want := rw.pending()
		sink.Reset()
		n, err := rw.flush()
		if err != nil {
			t.Fatal(err)
		}
		if int64(want) != n || n != int64(sink.Len()) {
			t.Fatalf("round %d: pending = %d, flush wrote %d (%d in sink)", round, want, n, sink.Len())
		}
		if got := rw.pending(); got != 0 {
			t.Fatalf("round %d: pending = %d after flush, want 0", round, got)
		}
	}
}

func TestRESPWriterFlushEmpty(t *testing.T) {
	var buf bytes.Buffer
	rw := newRESPWriter(&buf)
	n, err := rw.flush()
	if err != nil || n != 0 || buf.Len() != 0 {
		t.Errorf("empty flush = (%d, %v), wrote %d bytes", n, err, buf.Len())
	}
}

// End-to-end: replies big enough for the zero-copy writev path must
// arrive byte-intact through a real server connection, interleaved
// with small replies in one pipelined batch.
func TestServerLargeBulkThroughWritev(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)

	const elems = 20
	want := make([][]byte, elems)
	for i := range want {
		want[i] = bytes.Repeat([]byte{byte('a' + i)}, respZeroCopyMin*2+i)
		if _, err := c.RPush("biglist", want[i]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := c.NewPipeline(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("LRANGE", []byte("biglist"), []byte("0"), []byte("-1")); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("PING"); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("LRANGE", []byte("biglist"), []byte("5"), []byte("9")); err != nil {
		t.Fatal(err)
	}
	reps, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("%d replies, want 3", len(reps))
	}
	if len(reps[0].Array) != elems {
		t.Fatalf("full LRANGE returned %d elements, want %d", len(reps[0].Array), elems)
	}
	for i, el := range reps[0].Array {
		if !bytes.Equal(el.Bulk, want[i]) {
			t.Fatalf("element %d corrupted through writev path (len %d, want %d)",
				i, len(el.Bulk), len(want[i]))
		}
	}
	if reps[1].Str != "PONG" {
		t.Errorf("interleaved PING = %+v", reps[1])
	}
	for i, el := range reps[2].Array {
		if !bytes.Equal(el.Bulk, want[5+i]) {
			t.Fatalf("windowed element %d corrupted", i)
		}
	}
}

// N accept loops must all serve: with ListenN(addr, 4), many
// concurrent connections all complete a write/read round trip.
func TestServerListenNServesAllLoops(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.ListenN("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const conns = 16
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- fmt.Errorf("conn %d dial: %w", i, err)
				return
			}
			defer c.Close()
			key := fmt.Sprintf("ln:%d", i)
			if err := c.Set(key, []byte(key)); err != nil {
				errs <- fmt.Errorf("conn %d set: %w", i, err)
				return
			}
			got, err := c.Get(key)
			if err != nil || string(got) != key {
				errs <- fmt.Errorf("conn %d get = %q, %v", i, got, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.Engine().Size(); got != conns {
		t.Errorf("engine holds %d keys, want %d", got, conns)
	}
}

func TestServerListenNClampsBadCount(t *testing.T) {
	// n < 1 clamps to a single accept loop rather than failing: the
	// degenerate configuration is still a working server.
	srv := NewServer(nil)
	addr, err := srv.ListenN("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dialTest(t, addr)
	if err := c.Ping(); err != nil {
		t.Error(err)
	}
}
