package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pareto/internal/telemetry"
)

// Server exposes an Engine over TCP using the RESP protocol, one
// goroutine per connection, with pipelined reply batches coalesced
// into writev-style flushes. It optionally layers durability (snapshot
// + group-commit AOF) and hash-slot cluster membership on top of the
// engine.
type Server struct {
	engine *Engine

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	snapshotPath string
	wrapConn     func(net.Conn) net.Conn

	telemetry *telemetry.Registry
	metrics   *serverMetrics

	// persistMu orders commands against snapshot rewrites: the command
	// path holds it shared across engine-apply + AOF-append, a rewrite
	// (SAVE, BGREWRITEAOF, Close) holds it exclusive across
	// snapshot-save + AOF-reset, so the snapshot+log pair always
	// reconstructs exactly the applied command sequence.
	persistMu sync.RWMutex
	aof       *AOF
	// snapMark is the AOF watermark the loaded snapshot carried:
	// EnableAOF replays only the log tail past it, so records the
	// snapshot already contains are never double-applied.
	snapMark AOFMark

	cluster *clusterConfig

	// Replication state. role flips between primary and replica
	// (StartReplicaOf / PromoteToPrimary) and is checked lock-free per
	// command for read-only dispatch; hub is the primary side's replica
	// registry and ack ledger; replica is the replica side's session.
	role      atomic.Int32 // replRole
	hub       *replHub
	replica   *replicaSession
	promoteMu sync.Mutex
	replCfg   ReplicationConfig
	replm     *replMetrics
}

// NewServer wraps an engine; a nil engine gets a fresh one.
func NewServer(engine *Engine) *Server {
	if engine == nil {
		engine = NewEngine()
	}
	s := &Server{engine: engine, conns: make(map[net.Conn]struct{})}
	s.hub = newReplHub()
	s.replm = newReplMetrics(nil)
	s.hub.m = s.replm
	s.replCfg.normalize()
	return s
}

// Engine returns the underlying storage engine (useful for embedding
// and white-box tests).
func (s *Server) Engine() *Engine { return s.engine }

// EnableSnapshot configures persistence: an existing snapshot at path
// is loaded immediately, and the SAVE command (and Close) write back
// to it. Must be called before Listen (and before EnableAOF, so the
// snapshot loads before the log tail replays over it).
func (s *Server) EnableSnapshot(path string) error {
	s.mu.Lock()
	s.snapshotPath = path
	s.mu.Unlock()
	mark, err := s.engine.LoadSnapshotFileMark(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	s.mu.Lock()
	s.snapMark = mark
	s.mu.Unlock()
	return nil
}

// EnableAOF configures the append-only command log at path: the
// existing log tail is replayed into the engine immediately (call
// after EnableSnapshot — snapshot first, then the tail since it), and
// every subsequent write command is logged and group-commit fsynced
// before its reply batch is flushed, so an acknowledged write is
// durable. window ≤ 0 selects DefaultAOFSyncWindow. Must be called
// before Listen, and after SetTelemetry if AOF counters are wanted.
func (s *Server) EnableAOF(path string, window time.Duration) error {
	s.mu.Lock()
	reg := s.telemetry
	mark := s.snapMark
	s.mu.Unlock()
	_, end, err := ReplayAOFSince(path, s.engine, mark)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	} else if err := os.Truncate(path, end.Off); err != nil {
		// aof-load-truncated: a crash can tear the last record
		// mid-write; drop the torn bytes (they were never acknowledged)
		// before reopening for append, so new records never land behind
		// an unparseable tail that would poison the next replay.
		return fmt.Errorf("kvstore: aof truncate tail: %w", err)
	}
	a, err := OpenAOF(path, window, reg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.aof = a
	s.mu.Unlock()
	return nil
}

// AOF returns the server's append-only log, or nil when EnableAOF was
// never called (useful for white-box durability tests).
func (s *Server) AOF() *AOF {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aof
}

// SetClusterSlots enables hash-slot cluster mode: the server owns the
// slots assigned to self (its advertised address) in ranges, answers
// MOVED redirects for keys hashing elsewhere, CLUSTERDOWN for
// unassigned slots, and serves the full map via CLUSTER SLOTS. Must be
// called before Listen.
func (s *Server) SetClusterSlots(self string, ranges []SlotRange) error {
	table, err := newSlotTable(ranges)
	if err != nil {
		return err
	}
	if self == "" {
		return errors.New("kvstore: cluster self address required")
	}
	served := 0
	for _, owner := range table.owner {
		if owner == self {
			served++
		}
	}
	cfg := &clusterConfig{self: self}
	cfg.table.Store(table)
	s.mu.Lock()
	s.cluster = cfg
	s.telemetry.Gauge("kv_cluster_slots_served").Set(int64(served))
	s.mu.Unlock()
	return nil
}

// SetConnWrapper installs a wrapper applied to every subsequently
// accepted connection — the hook for fault injection (e.g. a
// faultnet.Plan.Wrapper()) or instrumentation. Must be called before
// Listen.
func (s *Server) SetConnWrapper(wrap func(net.Conn) net.Conn) {
	s.mu.Lock()
	s.wrapConn = wrap
	s.mu.Unlock()
}

// SetTelemetry attaches a metrics registry: per-command counts and
// latency, wire bytes in/out, connection churn, and parse errors are
// recorded into it, and the INFO command renders its snapshot. A nil
// registry (or never calling this) keeps instrumentation off with a
// single-branch fast path. Must be called before Listen.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	s.telemetry = reg
	s.metrics = newServerMetrics(reg)
	s.replm = newReplMetrics(reg)
	s.hub.m = s.replm
	s.mu.Unlock()
}

// SetReplication tunes the primary side of replication (semi-sync ack
// gating, feeder heartbeat/poll cadence). Must be called before Listen.
func (s *Server) SetReplication(cfg ReplicationConfig) {
	cfg.normalize()
	s.mu.Lock()
	s.replCfg = cfg
	s.mu.Unlock()
}

func (s *Server) replConfig() ReplicationConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replCfg
}

func (s *Server) replMetricsRef() *replMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replm
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// updateSlotsServed re-derives the kv_cluster_slots_served gauge after
// a table swap (promotion, CLUSTER REASSIGN).
func (s *Server) updateSlotsServed(cl *clusterConfig) {
	served := 0
	t := cl.table.Load()
	for _, owner := range t.owner {
		if owner == cl.self {
			served++
		}
	}
	s.mu.Lock()
	reg := s.telemetry
	s.mu.Unlock()
	reg.Gauge("kv_cluster_slots_served").Set(int64(served))
}

// infoReply renders the telemetry snapshot as a JSON bulk string.
// Per-connection counters land in the registry at batch boundaries, so
// INFO reflects activity through each connection's last flushed batch.
func (s *Server) infoReply() Reply {
	var buf bytes.Buffer
	if err := s.telemetry.Snapshot().WriteJSON(&buf); err != nil {
		return errReply("ERR " + err.Error())
	}
	return bulkReply(buf.Bytes())
}

// handleServerCommand intercepts commands that need server context
// (persistence, telemetry, cluster metadata); ok=false means the
// engine should handle the command.
func (s *Server) handleServerCommand(id cmdID, args [][]byte) (Reply, bool) {
	switch id {
	case cmdInfo:
		return s.infoReply(), true
	case cmdSave, cmdBGRewriteAOF:
		// Both compact persistence: snapshot the engine, then reset the
		// AOF the snapshot now supersedes. BGREWRITEAOF runs in the
		// foreground here — the engine is an in-memory map, so the
		// "background" distinction buys nothing.
		return s.rewritePersistence(), true
	case cmdCluster:
		s.mu.Lock()
		cl := s.cluster
		s.mu.Unlock()
		if cl == nil {
			return errReply("ERR cluster mode not enabled"), true
		}
		if len(args) == 1 && strings.EqualFold(string(args[0]), "SLOTS") {
			return cl.slotsReply(s.hub.addrs()), true
		}
		if len(args) == 3 && strings.EqualFold(string(args[0]), "REASSIGN") {
			// CLUSTER REASSIGN <from> <to>: rewrite every slot owned by
			// from to to — how failover convergence reaches the nodes
			// that were not part of the promotion itself.
			from, to := string(args[1]), string(args[2])
			if from == "" || to == "" || from == to {
				return errReply("ERR bad REASSIGN addresses"), true
			}
			var n int
			for {
				old := cl.table.Load()
				nt, moved := old.reassign(from, to)
				if moved == 0 {
					break
				}
				if cl.table.CompareAndSwap(old, nt) {
					n = moved
					break
				}
			}
			s.updateSlotsServed(cl)
			return intReply(int64(n)), true
		}
		return errReply("ERR unknown CLUSTER subcommand"), true
	case cmdReplInfo:
		return s.replInfoReply(), true
	case cmdReplTakeover:
		moved, err := s.PromoteToPrimary(true)
		if err != nil {
			return errReply("ERR " + err.Error()), true
		}
		return intReply(int64(moved)), true
	case cmdReplicaOf:
		if len(args) == 2 && strings.EqualFold(string(args[0]), "NO") &&
			strings.EqualFold(string(args[1]), "ONE") {
			if _, err := s.PromoteToPrimary(false); err != nil {
				return errReply("ERR " + err.Error()), true
			}
			return okReply(), true
		}
		var addr string
		switch len(args) {
		case 1:
			addr = string(args[0])
		case 2:
			addr = string(args[0]) + ":" + string(args[1])
		default:
			return errReply("ERR usage: REPLICAOF <host:port> | NO ONE"), true
		}
		var self string
		s.mu.Lock()
		if s.cluster != nil {
			self = s.cluster.self
		}
		s.mu.Unlock()
		if err := s.StartReplicaOf(addr, ReplicaOptions{SelfAddr: self}); err != nil {
			return errReply("ERR " + err.Error()), true
		}
		return okReply(), true
	}
	return Reply{}, false
}

// rewritePersistence is SAVE/BGREWRITEAOF: under the exclusive
// persistence lock (no command can apply+log concurrently), make the
// log durable and note its mark, write the snapshot embedding that
// mark (fsynced before its rename lands), then truncate the log the
// snapshot supersedes. A crash anywhere in the sequence recovers
// cleanly: before the rename the old snapshot + full log replay;
// after the rename but before the truncate, the mark makes replay
// skip every record the new snapshot already holds.
func (s *Server) rewritePersistence() Reply {
	s.mu.Lock()
	path := s.snapshotPath
	aof := s.aof
	s.mu.Unlock()
	if path == "" {
		return errReply("ERR snapshots not configured")
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	var mark AOFMark
	if aof != nil {
		m, err := aof.DurableMark()
		if err != nil {
			return errReply("ERR " + err.Error())
		}
		mark = m
	}
	if err := s.engine.SaveSnapshotFileMark(path, mark); err != nil {
		return errReply("ERR " + err.Error())
	}
	if aof != nil {
		if err := aof.Reset(); err != nil {
			return errReply("ERR " + err.Error())
		}
	}
	return okReply()
}

// Listen binds the address (e.g. "127.0.0.1:0") and starts accepting
// in a background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	return s.ListenN(addr, 1)
}

// ListenN binds n listeners to the same address (SO_REUSEPORT where
// the platform supports it, so the kernel load-balances incoming
// connections across n independent accept queues; elsewhere n accept
// goroutines share one listener) and starts an accept loop per
// listener slot. It returns the bound address.
func (s *Server) ListenN(addr string, n int) (string, error) {
	if n < 1 {
		n = 1
	}
	lns, err := listenN(addr, n)
	if err != nil {
		return "", fmt.Errorf("kvstore: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		for _, ln := range lns {
			ln.Close()
		}
		return "", errors.New("kvstore: server already closed")
	}
	s.listeners = append(s.listeners, lns...)
	reg := s.telemetry
	s.mu.Unlock()
	// n accept loops even when the platform only gave one listener:
	// loop i draws from listener i%len(lns).
	for i := 0; i < n; i++ {
		acc := reg.Counter(fmt.Sprintf(`kv_server_accepts_total{listener="%d"}`, i))
		s.wg.Add(1)
		go s.acceptLoop(lns[i%len(lns)], acc)
	}
	return lns[0].Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener, accepts *telemetry.Counter) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		accepts.Inc()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.wrapConn != nil {
			conn = s.wrapConn(conn)
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Instrumented connections read through a byte-counting wrapper and
	// keep goroutine-local command counters in stats, flushed to the
	// shared registry at batch boundaries (below) and on teardown.
	// stats == nil is the telemetry-off fast path. Writes bypass the
	// wrapper — the reply writer needs the real conn for writev — and
	// are counted from the flush return value instead.
	var stats *connStats
	readConn := conn
	if m := s.metrics; m != nil {
		cc := &countingConn{Conn: conn}
		readConn = cc
		stats = &connStats{m: m, cc: cc}
		m.connsTotal.Inc()
		m.connsActive.Add(1)
		defer func() {
			stats.flush()
			m.connsActive.Add(-1)
		}()
	}
	r := bufio.NewReaderSize(readConn, 64<<10)
	rw := newRESPWriter(conn)
	s.mu.Lock()
	aof := s.aof
	cluster := s.cluster
	replCfg := s.replCfg
	s.mu.Unlock()

	// pendingSeq is the highest AOF record this connection has appended
	// but not yet synced; the group-commit barrier runs once per reply
	// flush, so a pipelined batch of writes shares one fsync wait.
	var pendingSeq uint64
	flushReplies := func() error {
		if pendingSeq > 0 {
			err := aof.Sync(pendingSeq)
			pendingSeq = 0
			if err != nil {
				return err
			}
			if replCfg.MinAckReplicas > 0 {
				// Semi-sync gate: the batch is durable locally; now hold
				// the acks until enough replicas have applied through the
				// durable offset, so an acked write survives losing this
				// node. On timeout the connection fails — the client
				// never saw an ack for the batch.
				gen, off := aof.DurablePos()
				if werr := s.hub.waitAcked(gen, off, replCfg.MinAckReplicas, replCfg.AckTimeout); werr != nil {
					s.replm.ackTimeouts.Inc()
					return werr
				}
			}
		}
		n, err := rw.flush()
		if stats != nil {
			stats.cc.out += n
			stats.flush()
		}
		return err
	}

	// One command arena per connection: arguments parsed by
	// ReadCommandInto alias cb and are recycled every iteration. The
	// engine copies anything it stores at its boundary (see engine.go);
	// replies that alias the arena (PING/ECHO) are force-copied into the
	// reply writer's own buffer before the next read, so nothing
	// outlives its arena generation.
	var cb CommandBuffer
	for {
		cmd, args, err := ReadCommandInto(r, &cb, MaxBulkLen)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return
			}
			if stats != nil {
				stats.m.parseErrors.Inc()
			}
			// Malformed input: answer with an error if possible, drop.
			rw.writeReply(errReply("ERR "+err.Error()), true)
			_ = flushReplies()
			return
		}
		if stats != nil {
			stats.begin()
		}
		id := lookupCmd(cmd)
		if id == cmdReplSync {
			// The connection becomes a replication stream: flush anything
			// pipelined ahead of the handshake, then hand the conn (and
			// its read buffer) to the feeder until the stream dies.
			if err := flushReplies(); err != nil {
				return
			}
			s.serveReplSync(conn, r, args)
			return
		}
		var reply Reply
		handled := false
		if cluster != nil {
			if reply, handled = cluster.checkSlots(id, args); handled && stats != nil {
				if strings.HasPrefix(reply.Str, "MOVED") {
					stats.m.moved.Inc()
				} else {
					stats.m.clusterDown.Inc()
				}
			}
		}
		if !handled && cmdWrites(id) && s.role.Load() == int32(roleReplica) {
			// Replicas apply writes only from the replication stream; a
			// client write here would silently diverge from the primary.
			reply = errReply("READONLY You can't write against a read only replica.")
			handled = true
		}
		if !handled {
			reply, handled = s.handleServerCommand(id, args)
		}
		if !handled {
			if aof != nil && cmdWrites(id) {
				// Shared persistence lock across apply + append: a
				// rewrite can never snapshot between the two and then
				// double-apply the record on restart.
				s.persistMu.RLock()
				reply = s.engine.doID(id, cmd, args)
				if reply.Type != ErrorReply {
					seq, aerr := aof.Append(cmd, args)
					if aerr != nil {
						// Engine applied but the log is dead: fail the
						// command so the client never counts it durable.
						reply = errReply("ERR aof append: " + aerr.Error())
					} else {
						pendingSeq = seq
					}
				}
				s.persistMu.RUnlock()
			} else {
				reply = s.engine.doID(id, cmd, args)
			}
		}
		if stats != nil {
			stats.observe(classOfID(id), reply.Type == ErrorReply)
		}
		// PING/ECHO replies alias the parse arena, recycled on the next
		// ReadCommandInto — copy them; everything else may ride
		// zero-copy into the writev batch.
		rw.writeReply(reply, id == cmdPing || id == cmdEcho)
		// Coalesce reply writes: flush when no further command is
		// already buffered (a pipelined batch read in one bufio fill is
		// answered with one gather-write) or when the pending batch hits
		// the high-water mark.
		if r.Buffered() == 0 || rw.pending() >= respFlushHighWater {
			if err := flushReplies(); err != nil {
				return
			}
		}
	}
}

// Close stops accepting, closes every connection, waits for the
// connection goroutines to drain, then persists: snapshot (when
// configured) and, once the snapshot holds everything, AOF reset +
// close.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.listeners
	snapshotPath := s.snapshotPath
	aof := s.aof
	rs := s.replica
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	for _, ln := range lns {
		if cerr := ln.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if rs != nil {
		rs.shutdown()
		rs.wg.Wait()
	}
	s.wg.Wait()
	s.persistMu.Lock()
	if snapshotPath != "" {
		var mark AOFMark
		var merr error
		if aof != nil {
			mark, merr = aof.DurableMark()
		}
		if merr != nil {
			// Couldn't make the log durable: keep it intact (don't
			// reset) so restart replays it over the old snapshot.
			if err == nil {
				err = merr
			}
		} else if serr := s.engine.SaveSnapshotFileMark(snapshotPath, mark); serr != nil {
			if err == nil {
				err = serr
			}
		} else if aof != nil {
			// Snapshot saved and durable: the log is redundant,
			// truncate it so restart replays nothing twice.
			if rerr := aof.Reset(); rerr != nil && err == nil {
				err = rerr
			}
		}
	}
	s.persistMu.Unlock()
	if aof != nil {
		if cerr := aof.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Kill tears the server down like a crash: listeners and connections
// close and goroutines drain, but nothing is flushed or persisted — the
// AOF keeps exactly the bytes group commit already made durable, the
// snapshot stays untouched, and buffered un-fsynced records (whose
// writes were never acknowledged) vanish. Chaos tests use it to assert
// acked-write durability across failover.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lns := s.listeners
	aof := s.aof
	rs := s.replica
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	if aof != nil {
		aof.abandon()
	}
	if rs != nil {
		rs.shutdown()
		rs.wg.Wait()
	}
	s.wg.Wait()
}
