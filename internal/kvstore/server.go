package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"

	"pareto/internal/telemetry"
)

// Server exposes an Engine over TCP using the RESP protocol, one
// goroutine per connection, with the write side buffered so pipelined
// command batches are answered in single flushes.
type Server struct {
	engine *Engine

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	snapshotPath string
	wrapConn     func(net.Conn) net.Conn

	telemetry *telemetry.Registry
	metrics   *serverMetrics
}

// NewServer wraps an engine; a nil engine gets a fresh one.
func NewServer(engine *Engine) *Server {
	if engine == nil {
		engine = NewEngine()
	}
	return &Server{engine: engine, conns: make(map[net.Conn]struct{})}
}

// Engine returns the underlying storage engine (useful for embedding
// and white-box tests).
func (s *Server) Engine() *Engine { return s.engine }

// EnableSnapshot configures persistence: an existing snapshot at path
// is loaded immediately, and the SAVE command (and Close) write back
// to it. Must be called before Listen.
func (s *Server) EnableSnapshot(path string) error {
	s.mu.Lock()
	s.snapshotPath = path
	s.mu.Unlock()
	err := s.engine.LoadSnapshotFile(path)
	if err != nil && errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// SetConnWrapper installs a wrapper applied to every subsequently
// accepted connection — the hook for fault injection (e.g. a
// faultnet.Plan.Wrapper()) or instrumentation. Must be called before
// Listen.
func (s *Server) SetConnWrapper(wrap func(net.Conn) net.Conn) {
	s.mu.Lock()
	s.wrapConn = wrap
	s.mu.Unlock()
}

// SetTelemetry attaches a metrics registry: per-command counts and
// latency, wire bytes in/out, connection churn, and parse errors are
// recorded into it, and the INFO command renders its snapshot. A nil
// registry (or never calling this) keeps instrumentation off with a
// single-branch fast path. Must be called before Listen.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	s.telemetry = reg
	s.metrics = newServerMetrics(reg)
	s.mu.Unlock()
}

// infoReply renders the telemetry snapshot as a JSON bulk string.
// Per-connection counters land in the registry at batch boundaries, so
// INFO reflects activity through each connection's last flushed batch.
func (s *Server) infoReply() Reply {
	var buf bytes.Buffer
	if err := s.telemetry.Snapshot().WriteJSON(&buf); err != nil {
		return errReply("ERR " + err.Error())
	}
	return bulkReply(buf.Bytes())
}

// handleServerCommand intercepts commands that need server context
// (persistence, telemetry); ok=false means the engine should handle
// the command.
func (s *Server) handleServerCommand(cmd string) (Reply, bool) {
	if len(cmd) != 4 {
		return Reply{}, false
	}
	if strings.EqualFold(cmd, "INFO") {
		return s.infoReply(), true
	}
	if !strings.EqualFold(cmd, "SAVE") {
		return Reply{}, false
	}
	s.mu.Lock()
	path := s.snapshotPath
	s.mu.Unlock()
	if path == "" {
		return errReply("ERR snapshots not configured"), true
	}
	if err := s.engine.SaveSnapshotFile(path); err != nil {
		return errReply("ERR " + err.Error()), true
	}
	return okReply(), true
}

// Listen binds the address (e.g. "127.0.0.1:0") and starts accepting
// in a background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("kvstore: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("kvstore: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.wrapConn != nil {
			conn = s.wrapConn(conn)
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Instrumented connections read/write through a byte-counting
	// wrapper and keep goroutine-local command counters in stats,
	// flushed to the shared registry at batch boundaries (below) and on
	// teardown. stats == nil is the telemetry-off fast path.
	var stats *connStats
	ioConn := conn
	if m := s.metrics; m != nil {
		cc := &countingConn{Conn: conn}
		ioConn = cc
		stats = &connStats{m: m, cc: cc}
		m.connsTotal.Inc()
		m.connsActive.Add(1)
		defer func() {
			stats.flush()
			m.connsActive.Add(-1)
		}()
	}
	r := bufio.NewReaderSize(ioConn, 64<<10)
	w := bufio.NewWriterSize(ioConn, 64<<10)
	// One command arena per connection: arguments parsed by
	// ReadCommandInto alias cb and are recycled every iteration. The
	// engine copies anything it stores at its boundary (see engine.go),
	// and replies that alias the arena (PING/ECHO) are framed into w
	// before the next read, so nothing outlives its arena generation.
	var cb CommandBuffer
	for {
		cmd, args, err := ReadCommandInto(r, &cb, MaxBulkLen)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return
			}
			if stats != nil {
				stats.m.parseErrors.Inc()
			}
			// Malformed input: answer with an error if possible, drop.
			_ = WriteReply(w, errReply("ERR "+err.Error()))
			_ = w.Flush()
			return
		}
		if stats != nil {
			stats.begin()
		}
		reply, handled := s.handleServerCommand(cmd)
		if !handled {
			reply = s.engine.Do(cmd, args...)
		}
		if stats != nil {
			stats.observe(cmdClass(cmd), reply.Type == ErrorReply)
		}
		if err := WriteReply(w, reply); err != nil {
			return
		}
		// Coalesce reply writes: flush only when no further command is
		// already buffered, so a pipelined batch read in one bufio fill
		// is answered with one syscall, not one per command.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
			if stats != nil {
				stats.flush()
			}
		}
	}
}

// Close stops accepting, closes every connection, and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	snapshotPath := s.snapshotPath
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	if snapshotPath != "" {
		if serr := s.engine.SaveSnapshotFile(snapshotPath); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
