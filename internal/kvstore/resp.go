// Package kvstore is a from-scratch Redis-compatible key-value store:
// a storage engine, a TCP server speaking the RESP wire protocol, a
// client with request pipelining, and a fetch-and-increment global
// barrier.
//
// It reproduces the substrate of paper §IV: the partitioning framework
// runs one store instance per cluster node (never a managed "cluster
// mode", because the framework must control exactly which key lands on
// which node), stores each partition as a list of length-prefixed raw
// byte sequences so a whole partition moves in one request, batches
// requests through pipelining, and synchronizes phases with a global
// barrier built on the store's atomic INCR.
package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Reply is one RESP value: a simple string, error, integer, bulk
// string (possibly nil), or array (possibly nil).
type Reply struct {
	Type  ReplyType
	Str   string  // simple string or error text
	Int   int64   // integer
	Bulk  []byte  // bulk payload; nil for null bulk
	Array []Reply // array elements; nil for null array
}

// ReplyType discriminates RESP value kinds.
type ReplyType int

// RESP value kinds.
const (
	SimpleString ReplyType = iota
	ErrorReply
	Integer
	BulkString
	NullBulk
	Array
	NullArray
)

// Err converts an error reply into a Go error, nil otherwise.
func (r Reply) Err() error {
	if r.Type == ErrorReply {
		return fmt.Errorf("kvstore: server error: %s", r.Str)
	}
	return nil
}

// String renders the reply for diagnostics.
func (r Reply) String() string {
	switch r.Type {
	case SimpleString:
		return r.Str
	case ErrorReply:
		return "ERR " + r.Str
	case Integer:
		return strconv.FormatInt(r.Int, 10)
	case BulkString:
		return string(r.Bulk)
	case NullBulk:
		return "(nil)"
	case Array:
		return fmt.Sprintf("array[%d]", len(r.Array))
	case NullArray:
		return "(nil array)"
	default:
		return fmt.Sprintf("reply(%d)", int(r.Type))
	}
}

// Protocol limits guarding against malformed or hostile input.
const (
	maxBulkLen  = 1 << 30 // 1 GiB per bulk string
	maxArrayLen = 1 << 20 // 1M elements per array
)

// ErrProtocol reports malformed RESP data on the wire.
var ErrProtocol = errors.New("kvstore: protocol error")

// WriteCommand encodes a command as a RESP array of bulk strings.
func WriteCommand(w *bufio.Writer, name string, args ...[]byte) error {
	if err := writeArrayHeader(w, 1+len(args)); err != nil {
		return err
	}
	if err := writeBulk(w, []byte(name)); err != nil {
		return err
	}
	for _, a := range args {
		if err := writeBulk(w, a); err != nil {
			return err
		}
	}
	return nil
}

func writeArrayHeader(w *bufio.Writer, n int) error {
	if err := w.WriteByte('*'); err != nil {
		return err
	}
	if _, err := w.WriteString(strconv.Itoa(n)); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func writeBulk(w *bufio.Writer, b []byte) error {
	if err := w.WriteByte('$'); err != nil {
		return err
	}
	if _, err := w.WriteString(strconv.Itoa(len(b))); err != nil {
		return err
	}
	if _, err := w.WriteString("\r\n"); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

// WriteReply encodes a Reply in RESP framing.
func WriteReply(w *bufio.Writer, r Reply) error {
	switch r.Type {
	case SimpleString:
		if err := w.WriteByte('+'); err != nil {
			return err
		}
		if _, err := w.WriteString(r.Str); err != nil {
			return err
		}
		_, err := w.WriteString("\r\n")
		return err
	case ErrorReply:
		if err := w.WriteByte('-'); err != nil {
			return err
		}
		if _, err := w.WriteString(r.Str); err != nil {
			return err
		}
		_, err := w.WriteString("\r\n")
		return err
	case Integer:
		if err := w.WriteByte(':'); err != nil {
			return err
		}
		if _, err := w.WriteString(strconv.FormatInt(r.Int, 10)); err != nil {
			return err
		}
		_, err := w.WriteString("\r\n")
		return err
	case BulkString:
		return writeBulk(w, r.Bulk)
	case NullBulk:
		_, err := w.WriteString("$-1\r\n")
		return err
	case Array:
		if err := writeArrayHeader(w, len(r.Array)); err != nil {
			return err
		}
		for _, el := range r.Array {
			if err := WriteReply(w, el); err != nil {
				return err
			}
		}
		return nil
	case NullArray:
		_, err := w.WriteString("*-1\r\n")
		return err
	default:
		return fmt.Errorf("%w: unknown reply type %d", ErrProtocol, int(r.Type))
	}
}

// ReadReply decodes one RESP value.
func ReadReply(r *bufio.Reader) (Reply, error) {
	line, err := readLine(r)
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, fmt.Errorf("%w: empty line", ErrProtocol)
	}
	switch line[0] {
	case '+':
		return Reply{Type: SimpleString, Str: string(line[1:])}, nil
	case '-':
		return Reply{Type: ErrorReply, Str: string(line[1:])}, nil
	case ':':
		n, err := strconv.ParseInt(string(line[1:]), 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
		}
		return Reply{Type: Integer, Int: n}, nil
	case '$':
		n, err := strconv.ParseInt(string(line[1:]), 10, 64)
		if err != nil || n > maxBulkLen {
			return Reply{}, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if n < 0 {
			return Reply{Type: NullBulk}, nil
		}
		buf, err := readFullN(r, int(n)+2)
		if err != nil {
			return Reply{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Reply{}, fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
		}
		return Reply{Type: BulkString, Bulk: buf[:n]}, nil
	case '*':
		n, err := strconv.ParseInt(string(line[1:]), 10, 64)
		if err != nil || n > maxArrayLen {
			return Reply{}, fmt.Errorf("%w: bad array length %q", ErrProtocol, line)
		}
		if n < 0 {
			return Reply{Type: NullArray}, nil
		}
		els := make([]Reply, n)
		for i := range els {
			el, err := ReadReply(r)
			if err != nil {
				return Reply{}, err
			}
			els[i] = el
		}
		return Reply{Type: Array, Array: els}, nil
	default:
		return Reply{}, fmt.Errorf("%w: unexpected type byte %q", ErrProtocol, line[0])
	}
}

// ReadCommand decodes one client command (a RESP array of bulk
// strings) into its name and arguments. io.EOF is returned unmangled
// on a clean connection close between commands.
func ReadCommand(r *bufio.Reader) (string, [][]byte, error) {
	rep, err := ReadReply(r)
	if err != nil {
		return "", nil, err
	}
	if rep.Type != Array || len(rep.Array) == 0 {
		return "", nil, fmt.Errorf("%w: command must be a nonempty array", ErrProtocol)
	}
	args := make([][]byte, len(rep.Array))
	for i, el := range rep.Array {
		if el.Type != BulkString {
			return "", nil, fmt.Errorf("%w: command element %d not a bulk string", ErrProtocol, i)
		}
		args[i] = el.Bulk
	}
	return string(args[0]), args[1:], nil
}

// readFullN reads exactly n bytes, growing the buffer in bounded
// chunks so a hostile length header cannot force a huge allocation
// before the stream runs dry.
func readFullN(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		step := n - len(buf)
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// readLine reads a CRLF-terminated line, excluding the terminator.
func readLine(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		if err == nil || errors.Is(err, bufio.ErrBufferFull) {
			line = append(line, frag...)
			if err == nil {
				break
			}
			continue
		}
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line missing CRLF", ErrProtocol)
	}
	return line[:len(line)-2], nil
}
