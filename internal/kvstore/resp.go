// Package kvstore is a from-scratch Redis-compatible key-value store:
// a storage engine, a TCP server speaking the RESP wire protocol, a
// client with request pipelining, and a fetch-and-increment global
// barrier.
//
// It reproduces the substrate of paper §IV: the partitioning framework
// runs one store instance per cluster node (never a managed "cluster
// mode", because the framework must control exactly which key lands on
// which node), stores each partition as a list of length-prefixed raw
// byte sequences so a whole partition moves in one request, batches
// requests through pipelining, and synchronizes phases with a global
// barrier built on the store's atomic INCR.
//
// # Memory management on the wire
//
// The protocol layer has two decoding modes. The allocating mode
// (ReadReply, ReadCommand) returns values backed by fresh memory the
// caller owns forever. The pooled mode (ReadCommandInto with a
// CommandBuffer, ReadReplyInto with a reused Reply) parses into
// caller-provided storage that is recycled on the next call — the
// server's per-connection hot path and the client's pipelined reply
// drain use it, so steady-state request handling does not allocate.
// Anything that retains bytes past one request (the engine's SET,
// RPUSH, …) must copy at that boundary; see engine.go.
package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Reply is one RESP value: a simple string, error, integer, bulk
// string (possibly nil), or array (possibly nil).
type Reply struct {
	Type  ReplyType
	Str   string  // simple string or error text
	Int   int64   // integer
	Bulk  []byte  // bulk payload; nil for null bulk
	Array []Reply // array elements; nil for null array
}

// ReplyType discriminates RESP value kinds.
type ReplyType int

// RESP value kinds.
const (
	SimpleString ReplyType = iota
	ErrorReply
	Integer
	BulkString
	NullBulk
	Array
	NullArray
)

// Err converts an error reply into a Go error, nil otherwise.
func (r Reply) Err() error {
	if r.Type == ErrorReply {
		return fmt.Errorf("kvstore: server error: %s", r.Str)
	}
	return nil
}

// String renders the reply for diagnostics.
func (r Reply) String() string {
	switch r.Type {
	case SimpleString:
		return r.Str
	case ErrorReply:
		return "ERR " + r.Str
	case Integer:
		return strconv.FormatInt(r.Int, 10)
	case BulkString:
		return string(r.Bulk)
	case NullBulk:
		return "(nil)"
	case Array:
		return fmt.Sprintf("array[%d]", len(r.Array))
	case NullArray:
		return "(nil array)"
	default:
		return fmt.Sprintf("reply(%d)", int(r.Type))
	}
}

// Protocol limits guarding against malformed or hostile input.
const (
	// MaxBulkLen is the largest single bulk payload accepted on the
	// wire (1 GiB). A $<n> header beyond it is a protocol error, never
	// an allocation.
	MaxBulkLen = 1 << 30
	// MaxArrayLen is the largest array (and command argument count)
	// accepted on the wire.
	MaxArrayLen = 1 << 20
	// maxLineLen bounds a single header/simple-string line; a longer
	// line is hostile or corrupt, not data.
	maxLineLen = 64 << 10

	maxBulkLen  = MaxBulkLen // internal aliases predating the export
	maxArrayLen = MaxArrayLen
)

// ErrProtocol reports malformed RESP data on the wire.
var ErrProtocol = errors.New("kvstore: protocol error")

// writeCRLF terminates a RESP line.
func writeCRLF(w *bufio.Writer) error {
	if err := w.WriteByte('\r'); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// writeUint writes n in decimal digit by digit: on the per-command hot
// path this replaces a strconv.Itoa whose result escapes (one small
// allocation per length header).
func writeUint(w *bufio.Writer, n uint64) error {
	if n < 10 {
		return w.WriteByte(byte('0' + n))
	}
	var digits [20]byte
	i := len(digits)
	for n > 0 {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
	}
	for ; i < len(digits); i++ {
		if err := w.WriteByte(digits[i]); err != nil {
			return err
		}
	}
	return nil
}

// writeLen writes a "<prefix><decimal n>\r\n" header without
// allocating.
func writeLen(w *bufio.Writer, prefix byte, n int) error {
	if err := w.WriteByte(prefix); err != nil {
		return err
	}
	if err := writeUint(w, uint64(n)); err != nil {
		return err
	}
	return writeCRLF(w)
}

// WriteCommand encodes a command as a RESP array of bulk strings. It
// does not allocate: the name and arguments are framed directly into
// the writer's buffer.
func WriteCommand(w *bufio.Writer, name string, args ...[]byte) error {
	if err := writeLen(w, '*', 1+len(args)); err != nil {
		return err
	}
	if err := writeLen(w, '$', len(name)); err != nil {
		return err
	}
	if _, err := w.WriteString(name); err != nil {
		return err
	}
	if err := writeCRLF(w); err != nil {
		return err
	}
	for _, a := range args {
		if err := writeBulk(w, a); err != nil {
			return err
		}
	}
	return nil
}

func writeArrayHeader(w *bufio.Writer, n int) error {
	return writeLen(w, '*', n)
}

func writeBulk(w *bufio.Writer, b []byte) error {
	if err := writeLen(w, '$', len(b)); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return writeCRLF(w)
}

// WriteReply encodes a Reply in RESP framing.
func WriteReply(w *bufio.Writer, r Reply) error {
	switch r.Type {
	case SimpleString:
		if err := w.WriteByte('+'); err != nil {
			return err
		}
		if _, err := w.WriteString(r.Str); err != nil {
			return err
		}
		return writeCRLF(w)
	case ErrorReply:
		if err := w.WriteByte('-'); err != nil {
			return err
		}
		if _, err := w.WriteString(r.Str); err != nil {
			return err
		}
		return writeCRLF(w)
	case Integer:
		if err := w.WriteByte(':'); err != nil {
			return err
		}
		if r.Int < 0 {
			if _, err := w.WriteString(strconv.FormatInt(r.Int, 10)); err != nil {
				return err
			}
		} else if err := writeUint(w, uint64(r.Int)); err != nil {
			return err
		}
		return writeCRLF(w)
	case BulkString:
		return writeBulk(w, r.Bulk)
	case NullBulk:
		_, err := w.WriteString("$-1\r\n")
		return err
	case Array:
		if err := writeArrayHeader(w, len(r.Array)); err != nil {
			return err
		}
		for _, el := range r.Array {
			if err := WriteReply(w, el); err != nil {
				return err
			}
		}
		return nil
	case NullArray:
		_, err := w.WriteString("*-1\r\n")
		return err
	default:
		return fmt.Errorf("%w: unknown reply type %d", ErrProtocol, int(r.Type))
	}
}

// parseLen parses the payload of a bulk or array length header (the
// line after its type byte). Exactly "-1" means a RESP null; any other
// negative, non-numeric, or over-limit length is rejected with a clear
// error so a hostile or corrupt header can never drive an allocation.
func parseLen(line []byte, max int, what string) (n int, null bool, err error) {
	s := line[1:]
	if len(s) == 2 && s[0] == '-' && s[1] == '1' {
		return 0, true, nil
	}
	if len(s) == 0 {
		return 0, false, fmt.Errorf("%w: empty %s length", ErrProtocol, what)
	}
	if s[0] == '-' {
		return 0, false, fmt.Errorf("%w: negative %s length %q", ErrProtocol, what, s)
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false, fmt.Errorf("%w: bad %s length %q", ErrProtocol, what, s)
		}
		n = n*10 + int(c-'0')
		if n > max {
			return 0, false, fmt.Errorf("%w: %s length %q exceeds limit %d", ErrProtocol, what, s, max)
		}
	}
	return n, false, nil
}

// parseInt parses a full-range signed RESP integer without the
// strconv string conversion.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, false
		}
	}
	var v uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		if v > 1<<63 {
			return 0, false
		}
	}
	if neg {
		return -int64(v), true
	}
	if v == 1<<63 {
		return 0, false
	}
	return int64(v), true
}

// ReadReply decodes one RESP value into freshly allocated memory the
// caller owns.
func ReadReply(r *bufio.Reader) (Reply, error) {
	var rep Reply
	if err := ReadReplyInto(r, &rep, MaxBulkLen); err != nil {
		return Reply{}, err
	}
	return rep, nil
}

// ReadReplyInto decodes one RESP value into *dst, reusing dst's Bulk
// and Array capacity when it suffices. maxBulk bounds any single bulk
// payload: a $<n> header beyond it is a protocol error rather than a
// gigabyte allocation.
//
// Ownership: *dst is overwritten, including memory reachable through
// it from previous calls. A caller that retains bulk payloads or array
// elements across calls must copy them first, or use ReadReply.
func ReadReplyInto(r *bufio.Reader, dst *Reply, maxBulk int) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	if len(line) == 0 {
		return fmt.Errorf("%w: empty line", ErrProtocol)
	}
	switch line[0] {
	case '+':
		*dst = Reply{Type: SimpleString, Str: string(line[1:])}
		return nil
	case '-':
		*dst = Reply{Type: ErrorReply, Str: string(line[1:])}
		return nil
	case ':':
		n, ok := parseInt(line[1:])
		if !ok {
			return fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
		}
		*dst = Reply{Type: Integer, Int: n}
		return nil
	case '$':
		n, null, err := parseLen(line, maxBulk, "bulk")
		if err != nil {
			return err
		}
		if null {
			*dst = Reply{Type: NullBulk}
			return nil
		}
		buf, err := readFullNInto(r, dst.Bulk, n+2)
		if err != nil {
			return err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
		}
		*dst = Reply{Type: BulkString, Bulk: buf[:n]}
		return nil
	case '*':
		n, null, err := parseLen(line, MaxArrayLen, "array")
		if err != nil {
			return err
		}
		if null {
			*dst = Reply{Type: NullArray}
			return nil
		}
		els := dst.Array
		if cap(els) >= n {
			els = els[:n]
		} else {
			els = make([]Reply, n)
		}
		for i := range els {
			if err := ReadReplyInto(r, &els[i], maxBulk); err != nil {
				return err
			}
		}
		*dst = Reply{Type: Array, Array: els}
		return nil
	default:
		return fmt.Errorf("%w: unexpected type byte %q", ErrProtocol, line[0])
	}
}

// CommandBuffer is the reusable arena ReadCommandInto parses into: one
// flat payload buffer plus recycled argument-slice headers. A server
// connection owns one for its whole lifetime, so steady-state command
// parsing does not allocate.
type CommandBuffer struct {
	data  []byte
	spans []int // flattened (start, end) offset pairs into data
	args  [][]byte
}

// ReadCommand decodes one client command (a RESP array of bulk
// strings) into its name and freshly allocated arguments. io.EOF is
// returned unmangled on a clean connection close between commands.
func ReadCommand(r *bufio.Reader) (string, [][]byte, error) {
	name, args, err := ReadCommandInto(r, &CommandBuffer{}, MaxBulkLen)
	if err != nil {
		return "", nil, err
	}
	return name, args, nil
}

// ReadCommandInto decodes one client command into cb's arena and
// returns the command name plus its arguments. maxBulk bounds each
// argument's size; oversized or negative length headers are protocol
// errors, never allocations. io.EOF is returned unmangled on a clean
// connection close between commands.
//
// Ownership: the returned arguments alias cb's buffer and are valid
// only until the next ReadCommandInto call with the same buffer. A
// consumer that retains argument bytes past one command (a storage
// engine, a queue) must copy them into owned memory at its boundary.
func ReadCommandInto(r *bufio.Reader, cb *CommandBuffer, maxBulk int) (string, [][]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return "", nil, err
	}
	if len(line) == 0 {
		return "", nil, fmt.Errorf("%w: empty line", ErrProtocol)
	}
	if line[0] != '*' {
		return "", nil, fmt.Errorf("%w: command must be a nonempty array", ErrProtocol)
	}
	n, null, err := parseLen(line, MaxArrayLen, "array")
	if err != nil {
		return "", nil, err
	}
	if null || n == 0 {
		return "", nil, fmt.Errorf("%w: command must be a nonempty array", ErrProtocol)
	}
	cb.data = cb.data[:0]
	cb.spans = cb.spans[:0]
	for i := 0; i < n; i++ {
		line, err := readLine(r)
		if err != nil {
			return "", nil, err
		}
		if len(line) == 0 || line[0] != '$' {
			return "", nil, fmt.Errorf("%w: command element %d not a bulk string", ErrProtocol, i)
		}
		m, null, err := parseLen(line, maxBulk, "bulk")
		if err != nil {
			return "", nil, err
		}
		if null {
			return "", nil, fmt.Errorf("%w: command element %d not a bulk string", ErrProtocol, i)
		}
		start := len(cb.data)
		cb.data, err = appendFullN(r, cb.data, m+2)
		if err != nil {
			return "", nil, err
		}
		if cb.data[start+m] != '\r' || cb.data[start+m+1] != '\n' {
			return "", nil, fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
		}
		cb.data = cb.data[:start+m] // drop the CRLF from the arena
		cb.spans = append(cb.spans, start, start+m)
	}
	// Materialize the argument slices only now: arena growth during
	// parsing may have moved the buffer, so spans must resolve against
	// the final backing array for every argument to alias live memory.
	if cap(cb.args) >= n {
		cb.args = cb.args[:n]
	} else {
		cb.args = make([][]byte, n)
	}
	for i := 0; i < n; i++ {
		cb.args[i] = cb.data[cb.spans[2*i]:cb.spans[2*i+1]:cb.spans[2*i+1]]
	}
	return internCommand(cb.args[0]), cb.args[1:], nil
}

// internCommand maps command-name bytes to interned canonical strings,
// removing the per-command string conversion from the hot path (the
// switch on string(b) compiles to an allocation-free lookup). Unknown
// or non-canonical spellings fall back to an allocated copy, which the
// engine's case-insensitive dispatch still accepts.
func internCommand(b []byte) string {
	switch string(b) {
	case "GET":
		return "GET"
	case "SET":
		return "SET"
	case "MGET":
		return "MGET"
	case "MSET":
		return "MSET"
	case "DEL":
		return "DEL"
	case "EXISTS":
		return "EXISTS"
	case "INCR":
		return "INCR"
	case "INCRBY":
		return "INCRBY"
	case "APPEND":
		return "APPEND"
	case "STRLEN":
		return "STRLEN"
	case "RPUSH":
		return "RPUSH"
	case "LPUSH":
		return "LPUSH"
	case "LLEN":
		return "LLEN"
	case "LINDEX":
		return "LINDEX"
	case "LRANGE":
		return "LRANGE"
	case "PING":
		return "PING"
	case "ECHO":
		return "ECHO"
	case "DBSIZE":
		return "DBSIZE"
	case "INFO":
		return "INFO"
	case "SAVE":
		return "SAVE"
	case "BGREWRITEAOF":
		return "BGREWRITEAOF"
	case "CLUSTER":
		return "CLUSTER"
	case "FLUSHDB":
		return "FLUSHDB"
	case "FLUSHALL":
		return "FLUSHALL"
	}
	return string(b)
}

// readFullN reads exactly n bytes into fresh memory, growing in
// bounded chunks so a hostile length header cannot force a huge
// allocation before the stream runs dry.
func readFullN(r io.Reader, n int) ([]byte, error) {
	return readFullNInto(r, nil, n)
}

// readFullNInto reads exactly n bytes, reusing buf's capacity when it
// suffices and otherwise growing in bounded chunks.
func readFullNInto(r io.Reader, buf []byte, n int) ([]byte, error) {
	const chunk = 1 << 20
	if cap(buf) >= n {
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	if n <= chunk {
		buf = make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	out, err := appendFullN(r, buf[:0], n)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// appendFullN appends exactly n bytes from r onto buf, growing the
// buffer in bounded chunks (so a hostile length header allocates no
// faster than the stream actually delivers) and without the temporary
// slices a naive append-grow would create.
func appendFullN(r io.Reader, buf []byte, n int) ([]byte, error) {
	const chunk = 1 << 20
	for n > 0 {
		step := n
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		if cap(buf)-start < step {
			newCap := 2 * cap(buf)
			if newCap < start+step {
				newCap = start + step
			}
			grown := make([]byte, start, newCap)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:start+step]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return buf[:start], err
		}
		n -= step
	}
	return buf, nil
}

// readLine reads a CRLF-terminated line, excluding the terminator. On
// the common path the returned slice aliases the bufio buffer and is
// valid only until the next read from r — every caller parses it
// before reading further.
func readLine(r *bufio.Reader) ([]byte, error) {
	frag, err := r.ReadSlice('\n')
	if err == nil {
		if len(frag) < 2 || frag[len(frag)-2] != '\r' {
			return nil, fmt.Errorf("%w: line missing CRLF", ErrProtocol)
		}
		return frag[: len(frag)-2 : len(frag)-2], nil
	}
	if !errors.Is(err, bufio.ErrBufferFull) {
		return nil, err
	}
	// Rare path: the line spans bufio fills; accumulate, bounded.
	line := append(make([]byte, 0, 2*len(frag)), frag...)
	for {
		if len(line) > maxLineLen {
			return nil, fmt.Errorf("%w: header line exceeds %d bytes", ErrProtocol, maxLineLen)
		}
		frag, err = r.ReadSlice('\n')
		line = append(line, frag...)
		if err == nil {
			break
		}
		if !errors.Is(err, bufio.ErrBufferFull) {
			return nil, err
		}
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line missing CRLF", ErrProtocol)
	}
	return line[:len(line)-2], nil
}
