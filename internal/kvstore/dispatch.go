package kvstore

// Command dispatch. The wire hands the server a command name whose
// case is whatever the client chose; dispatching through
// strings.ToUpper would allocate for every non-uppercase spelling on
// the hot path. Instead every command name is resolved once into a
// small integer cmdID by case-folding into a stack buffer and
// switching on it — the compiler turns `switch string(buf)` against
// constant cases into allocation-free comparisons — and both the
// engine and the server's telemetry classification dispatch on the ID.

// cmdID identifies one wire command (or cmdNone for an unknown name).
type cmdID uint8

const (
	cmdNone cmdID = iota
	cmdPing
	cmdEcho
	cmdSet
	cmdGet
	cmdMSet
	cmdMGet
	cmdDel
	cmdExists
	cmdIncr
	cmdIncrBy
	cmdAppend
	cmdStrlen
	cmdRPush
	cmdLPush
	cmdLLen
	cmdLIndex
	cmdLRange
	cmdFlushDB
	cmdFlushAll
	cmdDBSize
	// Server-context commands: the engine treats them as unknown, the
	// server intercepts them before engine dispatch.
	cmdInfo
	cmdSave
	cmdBGRewriteAOF
	cmdCluster
	// Replication commands: REPLSYNC turns a connection into a
	// replication stream, REPLICAOF/REPLTAKEOVER switch roles, REPLINFO
	// introspects; REPLPING/REPLACK are stream-internal frames.
	cmdReplSync
	cmdReplPing
	cmdReplAck
	cmdReplInfo
	cmdReplTakeover
	cmdReplicaOf
	numCmdIDs
)

// maxCmdNameLen bounds the fold buffer; the longest command name is
// BGREWRITEAOF (12 bytes).
const maxCmdNameLen = 16

// lookupCmd resolves a command name of any case to its cmdID without
// allocating. Unknown names (and names longer than any known command)
// map to cmdNone.
func lookupCmd(cmd string) cmdID {
	if len(cmd) > maxCmdNameLen {
		return cmdNone
	}
	var buf [maxCmdNameLen]byte
	for i := 0; i < len(cmd); i++ {
		c := cmd[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	switch string(buf[:len(cmd)]) {
	case "GET":
		return cmdGet
	case "SET":
		return cmdSet
	case "MGET":
		return cmdMGet
	case "MSET":
		return cmdMSet
	case "DEL":
		return cmdDel
	case "EXISTS":
		return cmdExists
	case "INCR":
		return cmdIncr
	case "INCRBY":
		return cmdIncrBy
	case "APPEND":
		return cmdAppend
	case "STRLEN":
		return cmdStrlen
	case "RPUSH":
		return cmdRPush
	case "LPUSH":
		return cmdLPush
	case "LLEN":
		return cmdLLen
	case "LINDEX":
		return cmdLIndex
	case "LRANGE":
		return cmdLRange
	case "PING":
		return cmdPing
	case "ECHO":
		return cmdEcho
	case "FLUSHDB":
		return cmdFlushDB
	case "FLUSHALL":
		return cmdFlushAll
	case "DBSIZE":
		return cmdDBSize
	case "INFO":
		return cmdInfo
	case "SAVE":
		return cmdSave
	case "BGREWRITEAOF":
		return cmdBGRewriteAOF
	case "CLUSTER":
		return cmdCluster
	case "REPLSYNC":
		return cmdReplSync
	case "REPLPING":
		return cmdReplPing
	case "REPLACK":
		return cmdReplAck
	case "REPLINFO":
		return cmdReplInfo
	case "REPLTAKEOVER":
		return cmdReplTakeover
	case "REPLICAOF":
		return cmdReplicaOf
	}
	return cmdNone
}

// cmdWrites reports whether a command mutates the engine — the set the
// append-only log must record for replay to reconstruct the store.
func cmdWrites(id cmdID) bool {
	switch id {
	case cmdSet, cmdMSet, cmdDel, cmdIncr, cmdIncrBy, cmdAppend,
		cmdRPush, cmdLPush, cmdFlushDB, cmdFlushAll:
		return true
	}
	return false
}

// firstKeyArg returns the index of the command's first key argument,
// or -1 for keyless commands (PING, DBSIZE, FLUSH*, INFO, …). For
// multi-key commands this is the routing key; allKeyArgs enumerates
// the rest.
func firstKeyArg(id cmdID) int {
	switch id {
	case cmdGet, cmdSet, cmdDel, cmdExists, cmdIncr, cmdIncrBy,
		cmdAppend, cmdStrlen, cmdRPush, cmdLPush, cmdLLen, cmdLIndex,
		cmdLRange, cmdMGet, cmdMSet:
		return 0
	}
	return -1
}

// keyArgStride describes how a command's arguments enumerate keys:
// (first, stride, count=all remaining). stride 0 means exactly one key
// at the first position; 1 means every argument is a key (DEL, EXISTS,
// MGET); 2 means every other argument starting at first (MSET).
func keyArgStride(id cmdID) (first, stride int) {
	switch id {
	case cmdDel, cmdExists, cmdMGet:
		return 0, 1
	case cmdMSet:
		return 0, 2
	case cmdGet, cmdSet, cmdIncr, cmdIncrBy, cmdAppend, cmdStrlen,
		cmdRPush, cmdLPush, cmdLLen, cmdLIndex, cmdLRange:
		return 0, 0
	}
	return -1, 0
}
