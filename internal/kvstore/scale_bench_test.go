package kvstore

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// Scaling benchmark for the multi-core data plane: many concurrent
// clients, each driving a deep pipeline of alternating SET/GET over
// its own connection, against a server with GOMAXPROCS-scaled shards
// and one accept loop per core. Aggregate ops/sec is the paper's
// "heavy traffic" axis — run it at GOMAXPROCS=1 vs N to measure how
// the shard mask, lock striping, and writev reply batching convert
// cores into throughput.
//
//	go test ./internal/kvstore -bench ServerPipelinedSetGet -cpu 1,4,8

// BenchmarkServerPipelinedSetGet reports aggregate pipelined SET/GET
// throughput across GOMAXPROCS-many concurrent connections.
func BenchmarkServerPipelinedSetGet(b *testing.B) {
	const pipeWidth = 64
	procs := runtime.GOMAXPROCS(0)
	srv := NewServer(NewEngineShards(0))
	addr, err := srv.ListenN("127.0.0.1:0", procs)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	var connID atomic.Int64
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// One connection and one pipeline per benchmark goroutine; keys
		// spread across shards via the connection id.
		id := connID.Add(1)
		c, err := Dial(addr, 5*time.Second)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		p, err := c.NewPipeline(pipeWidth)
		if err != nil {
			b.Error(err)
			return
		}
		var reps []Reply
		keys := make([][]byte, 16)
		for k := range keys {
			keys[k] = []byte(fmt.Sprintf("bench:%d:%d", id, k))
		}
		i := 0
		queued := 0
		for pb.Next() {
			key := keys[i%len(keys)]
			if i%2 == 0 {
				err = p.Send("SET", key, val)
			} else {
				err = p.Send("GET", key)
			}
			if err != nil {
				b.Error(err)
				return
			}
			i++
			queued++
			if queued >= 2*pipeWidth {
				if reps, err = p.FinishInto(reps[:0]); err != nil {
					b.Error(err)
					return
				}
				p.Reuse(reps)
				queued = 0
			}
		}
		if reps, err = p.FinishInto(reps[:0]); err != nil {
			b.Error(err)
		}
		_ = reps
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
