package kvstore

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierValidation(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	if _, err := NewBarrier(c, "b", 0); err == nil {
		t.Error("0 parties accepted")
	}
	if _, err := NewBarrier(c, "", 2); err == nil {
		t.Error("empty name accepted")
	}
}

func TestBarrierSingleParty(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	b, err := NewBarrier(c, "solo", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Await(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}

func TestBarrierSynchronizesPhases(t *testing.T) {
	addr, _ := startServer(t)
	const parties = 6
	const rounds = 4
	var phase [rounds]int32
	var wg sync.WaitGroup
	errCh := make(chan error, parties)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			b, err := NewBarrier(c, "phases", parties)
			if err != nil {
				errCh <- err
				return
			}
			for r := 0; r < rounds; r++ {
				atomic.AddInt32(&phase[r], 1)
				if err := b.Await(); err != nil {
					errCh <- err
					return
				}
				// After the barrier, every party must have bumped this
				// round's counter.
				if got := atomic.LoadInt32(&phase[r]); got != parties {
					errCh <- errors.New("barrier released early")
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestBarrierTimeout(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	b, err := NewBarrier(c, "lonely", 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Timeout = 50 * time.Millisecond
	start := time.Now()
	err = b.Await()
	if !errors.Is(err, ErrBarrierTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout took far too long")
	}
}

func TestBarrierGenerationsIndependent(t *testing.T) {
	// A straggler arriving while others are already in the next
	// generation must not corrupt either round (keys are per-gen).
	addr, _ := startServer(t)
	c1 := dialTest(t, addr)
	c2 := dialTest(t, addr)
	b1, _ := NewBarrier(c1, "gen", 2)
	b2, _ := NewBarrier(c2, "gen", 2)
	done := make(chan error, 1)
	go func() {
		// Party 2 runs two rounds back to back.
		if err := b2.Await(); err != nil {
			done <- err
			return
		}
		done <- b2.Await()
	}()
	if err := b1.Await(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // party 2 now waits in round 2
	if err := b1.Await(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBarrierArriveReleasesPeers(t *testing.T) {
	addr, _ := startServer(t)
	c1 := dialTest(t, addr)
	c2 := dialTest(t, addr)
	b1, err := NewBarrier(c1, "abandon", 2)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewBarrier(c2, "abandon", 2)
	if err != nil {
		t.Fatal(err)
	}
	b2.Timeout = 5 * time.Second
	done := make(chan error, 1)
	go func() { done <- b2.Await() }()
	time.Sleep(20 * time.Millisecond)
	// Party 1 aborts but still arrives: party 2 must unblock promptly.
	if err := b1.Arrive(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("peer got %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("peer stayed blocked after Arrive")
	}
	// Generations advanced consistently: the next round still works.
	go func() { done <- b2.Await() }()
	if err := b1.Arrive(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("second round: %v", err)
	}
}
