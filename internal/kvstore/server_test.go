package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startServer spins up a server on an ephemeral port and returns its
// address plus a cleanup.
func startServer(t *testing.T) (string, *Server) {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerBasicRoundtrip(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Errorf("GET = %q", got)
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrNil) {
		t.Errorf("missing key error = %v", err)
	}
}

func TestServerListsAndCounters(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	if _, err := c.RPush("list", []byte("a"), []byte("b"), []byte("c")); err != nil {
		t.Fatal(err)
	}
	n, err := c.LLen("list")
	if err != nil || n != 3 {
		t.Fatalf("LLEN = %d, %v", n, err)
	}
	els, err := c.LRange("list", 0, -1)
	if err != nil || len(els) != 3 || string(els[1]) != "b" {
		t.Fatalf("LRANGE = %q, %v", els, err)
	}
	v, err := c.Incr("counter")
	if err != nil || v != 1 {
		t.Fatalf("INCR = %d, %v", v, err)
	}
	deleted, err := c.Del("list", "counter", "ghost")
	if err != nil || deleted != 2 {
		t.Fatalf("DEL = %d, %v", deleted, err)
	}
}

func TestServerBinarySafety(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i % 256)
	}
	if err := c.Set("bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("binary payload corrupted in transit")
	}
}

func TestServerPipelining(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.Send("SET", []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	reps, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != n {
		t.Fatalf("%d replies, want %d", len(reps), n)
	}
	for i, r := range reps {
		if r.Str != "OK" {
			t.Fatalf("reply %d = %v", i, r)
		}
	}
	// Verify a value after the pipeline.
	got, err := c.Get("k250")
	if err != nil || string(got) != "v250" {
		t.Fatalf("k250 = %q, %v", got, err)
	}
}

func TestServerPipelineWidthWrapper(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	p, err := c.NewPipeline(16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := p.Send("RPUSH", []byte("pl"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	reps, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != n {
		t.Fatalf("%d replies, want %d", len(reps), n)
	}
	if reps[n-1].Int != n {
		t.Errorf("final length %d, want %d", reps[n-1].Int, n)
	}
	if _, err := c.NewPipeline(0); err == nil {
		t.Error("zero-width pipeline accepted")
	}
}

func TestServerDoAfterSendPreservesOrder(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	if err := c.Send("SET", []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("INCR", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Do must drain the two pending replies and return its own.
	got, err := c.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "2" {
		t.Errorf("a = %q, want 2", got)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	addr, _ := startServer(t)
	const clients, per = 8, 200
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for j := 0; j < per; j++ {
				if _, err := c.Incr("shared"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	c := dialTest(t, addr)
	got, err := c.Get("shared")
	if err != nil || string(got) != fmt.Sprintf("%d", clients*per) {
		t.Fatalf("shared = %q (%v), want %d", got, err, clients*per)
	}
}

func TestServerMalformedInputClosesConn(t *testing.T) {
	addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GARBAGE\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := conn.Read(buf)
	if n > 0 && buf[0] != '-' {
		t.Errorf("expected error reply, got %q", buf[:n])
	}
	// The connection should be closed after the error.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection stayed open after protocol error")
	}
}

func TestServerErrorRepliesSurfaceAsErrors(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	if _, err := c.RPush("s"); err == nil {
		// RPush with no values is a client-arity error at the server.
		t.Error("arity error not surfaced")
	}
	if err := c.Set("str", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LLen("str"); err == nil {
		t.Error("WRONGTYPE not surfaced")
	}
}

func TestServerCloseIdempotentAndRefusesNew(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := Dial(addr, 200*time.Millisecond); err == nil {
		t.Error("dial succeeded after close")
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("listen after close accepted")
	}
}

func TestServerSharedEngineEmbedding(t *testing.T) {
	// The same engine can serve in-process and remote users — the
	// framework embeds it for the local partition and serves remote
	// partitions over TCP.
	engine := NewEngine()
	srv := NewServer(engine)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	engine.Do("SET", []byte("local"), []byte("write"))
	c := dialTest(t, addr)
	got, err := c.Get("local")
	if err != nil || string(got) != "write" {
		t.Fatalf("remote read of local write = %q, %v", got, err)
	}
}

func BenchmarkServerPipelinedSet(b *testing.B) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	val := bytes.Repeat([]byte("x"), 64)
	b.ResetTimer()
	const width = 64
	for i := 0; i < b.N; i += width {
		for j := 0; j < width && i+j < b.N; j++ {
			if err := c.Send("SET", []byte("k"), val); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerUnpipelinedSet(b *testing.B) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	val := bytes.Repeat([]byte("x"), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set("k", val); err != nil {
			b.Fatal(err)
		}
	}
}

func TestClientMSetMGetOverWire(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	keys := []string{"m1", "m2", "m3"}
	vals := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma")}
	if err := c.MSet(keys, vals); err != nil {
		t.Fatal(err)
	}
	got, err := c.MGet("m1", "missing", "m3", "m2")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), nil, []byte("gamma"), []byte("")}
	if len(got) != len(want) {
		t.Fatalf("MGET returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if (got[i] == nil) != (want[i] == nil) || !bytes.Equal(got[i], want[i]) {
			t.Errorf("MGET[%d] = %q (nil=%v), want %q", i, got[i], got[i] == nil, want[i])
		}
	}
	// Arity mismatch is a client-side error, caught before the wire.
	if err := c.MSet([]string{"a"}, nil); err == nil {
		t.Error("mismatched MSet accepted")
	}
}

func TestClientLRangeChunked(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	const n = 1000
	var want [][]byte
	for i := 0; i < n; i += 100 {
		batch := make([][]byte, 0, 100)
		for j := i; j < i+100; j++ {
			batch = append(batch, []byte(fmt.Sprintf("el-%04d", j)))
		}
		want = append(want, batch...)
		if _, err := c.RPush("biglist", batch...); err != nil {
			t.Fatal(err)
		}
	}
	// A window that doesn't divide n exercises the ragged final batch.
	var got [][]byte
	batches := 0
	err := c.LRangeChunked("biglist", 64, func(batch [][]byte) error {
		batches++
		for _, b := range batch {
			got = append(got, append([]byte(nil), b...))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != (n+63)/64 {
		t.Errorf("saw %d batches, want %d", batches, (n+63)/64)
	}
	if len(got) != n {
		t.Fatalf("streamed %d elements, want %d", len(got), n)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("element %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Missing key streams zero batches without error.
	if err := c.LRangeChunked("nope", 64, func([][]byte) error {
		t.Error("callback invoked for missing key")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Callback errors abort the stream and surface.
	sentinel := errors.New("stop")
	if err := c.LRangeChunked("biglist", 64, func([][]byte) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("callback error surfaced as %v", err)
	}
}

func TestPipelineFinishIntoReuse(t *testing.T) {
	addr, _ := startServer(t)
	c := dialTest(t, addr)
	p, err := c.NewPipeline(8)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: fill a reply slice.
	for i := 0; i < 20; i++ {
		if err := p.Send("SET", []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	reps, err := p.FinishInto(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 20 {
		t.Fatalf("round 1: %d replies, want 20", len(reps))
	}
	// Round 2: the same backing slice is recycled.
	p.Reuse(reps)
	for i := 0; i < 20; i++ {
		if err := p.Send("GET", []byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	reps2, err := p.FinishInto(reps[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(reps2) != 20 {
		t.Fatalf("round 2: %d replies, want 20", len(reps2))
	}
	for i, r := range reps2 {
		if string(r.Bulk) != "v" {
			t.Errorf("reply %d = %q, want v", i, r.Bulk)
		}
	}
}
