package frontier

import (
	"reflect"
	"runtime"
	"testing"

	"pareto/internal/opt"
	"pareto/internal/sampling"
	"pareto/internal/telemetry"
)

// denseAlphas is a 41-value ladder matching the benchmark scale: the
// default sweep's shape (dense near 1) extended with uniform coverage.
func denseAlphas() []float64 {
	out := UniformAlphas(31)
	out = append(out, 0.905, 0.95, 0.975, 0.99, 0.995, 0.999, 0.9995, 0.9999, 0.99995, 0.99999)
	return out
}

func workerCounts() []int {
	return []int{1, 4, runtime.NumCPU()}
}

func TestSweepEquivalentToColdFrontier(t *testing.T) {
	// The tentpole guarantee: warm-started parallel sweeps produce
	// FrontierPoints deep-equal (bit-identical floats included) to the
	// cold-solve opt.Frontier path, at every worker count. Run under
	// -race this also exercises the chunked chain scheduling.
	for _, p := range []int{8, 16, 64} {
		nodes := PaperModels(p)
		total := 1_000_000
		alphas := denseAlphas()
		cold, err := opt.Frontier(nodes, total, alphas)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts() {
			res, err := Sweep(nodes, total, Config{Alphas: alphas, Workers: w})
			if err != nil {
				t.Fatalf("p=%d workers=%d: %v", p, w, err)
			}
			if len(res.Points) != len(cold) {
				t.Fatalf("p=%d workers=%d: %d points, cold has %d", p, w, len(res.Points), len(cold))
			}
			for i := range cold {
				if !reflect.DeepEqual(res.Points[i].FrontierPoint, cold[i]) {
					t.Fatalf("p=%d workers=%d: point %d diverges from cold solve:\nwarm: %+v\ncold: %+v",
						p, w, i, res.Points[i].FrontierPoint, cold[i])
				}
			}
		}
	}
}

func TestExactEquivalentToColdExactFrontier(t *testing.T) {
	for _, p := range []int{8, 16} {
		nodes := PaperModels(p)
		total := 500_000
		cold, err := opt.ExactFrontier(nodes, total, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts() {
			res, err := Exact(nodes, total, Config{Workers: w})
			if err != nil {
				t.Fatalf("p=%d workers=%d: %v", p, w, err)
			}
			if len(res.Points) != len(cold) {
				t.Fatalf("p=%d workers=%d: %d points, cold has %d", p, w, len(res.Points), len(cold))
			}
			for i := range cold {
				if !reflect.DeepEqual(res.Points[i].FrontierPoint, cold[i]) {
					t.Fatalf("p=%d workers=%d: point %d diverges from cold bisection:\nwarm: %+v\ncold: %+v",
						p, w, i, res.Points[i].FrontierPoint, cold[i])
				}
			}
			if res.Stats.Solves < len(cold) {
				t.Errorf("p=%d workers=%d: stats report %d solves for %d points", p, w, res.Stats.Solves, len(cold))
			}
		}
	}
}

func TestSweepWarmStartsPayOff(t *testing.T) {
	// A single-worker sweep cold-solves only the first α; everything
	// else must ride the retained basis, and the warm pivots must be a
	// small fraction of the total.
	nodes := PaperModels(64)
	res, err := Sweep(nodes, 1_000_000, Config{Alphas: denseAlphas(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Solves != len(dedupAlphas(denseAlphas())) {
		t.Errorf("solves = %d, want one per distinct α (%d)", st.Solves, len(dedupAlphas(denseAlphas())))
	}
	if st.WarmSolves != st.Solves-1 {
		t.Errorf("warm solves = %d of %d: a 1-worker chain must cold-solve exactly once", st.WarmSolves, st.Solves)
	}
	coldPivots := st.Pivots - st.WarmPivots
	if st.WarmSolves > 0 && st.WarmPivots >= coldPivots*st.WarmSolves {
		t.Errorf("warm pivots %d over %d solves vs %d cold pivots: warm starts are not cheaper",
			st.WarmPivots, st.WarmSolves, coldPivots)
	}
	for i, p := range res.Points {
		if p.Pivots < 0 {
			t.Errorf("point %d has negative pivot count", i)
		}
	}
}

func dedupAlphas(alphas []float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, a := range alphas {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

func TestSweepNonConvexDominancePruning(t *testing.T) {
	// Two nodes: fast-and-dirty vs slightly-slower-and-green. On the
	// classic (makespan, dirty energy) axes every α sample is
	// non-dominated — α=0 has zero dirty energy. Extend the objective
	// vector with total node-seconds and the α=0 plan (everything
	// consolidated on the slower green node) is beaten on BOTH axes by
	// the α=1 balance: same-or-worse makespan AND more node-seconds.
	// The sweep must keep the sample in Points (2-D contract) but flag
	// and exclude it from the filtered frontier.
	nodes := []opt.NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 400},
		{Time: sampling.LinearFit{Slope: 0.0011}, DirtyRate: 0},
	}
	axes := []Axis{MakespanAxis(), NodeSecondsAxis()}
	res, err := Sweep(nodes, 100_000, Config{
		Alphas:  []float64{0, 0.5, 0.9, 0.99, 0.999, 1},
		Workers: 1,
		Axes:    axes,
	})
	if err != nil {
		t.Fatal(err)
	}
	var zero *Point
	for i := range res.Points {
		if res.Points[i].Alpha == 0 {
			zero = &res.Points[i]
		}
	}
	if zero == nil {
		t.Fatal("α=0 sample missing from canonical points")
	}
	if zero.Plan.Sizes[1] != 100_000 {
		t.Fatalf("α=0 must consolidate on the green node, got sizes %v", zero.Plan.Sizes)
	}
	if !zero.Dominated {
		t.Fatal("α=0 consolidation must be dominance-pruned on (makespan, node_seconds)")
	}
	if res.Stats.Dominated < 1 {
		t.Errorf("stats.Dominated = %d, want ≥ 1", res.Stats.Dominated)
	}
	for _, p := range res.Frontier() {
		if p.Dominated {
			t.Error("Frontier() leaked a dominated point")
		}
		if p.Alpha == 0 {
			t.Error("Frontier() kept the pruned α=0 sample")
		}
	}
	if len(res.Frontier())+res.Stats.Dominated != len(res.Points) {
		t.Errorf("filtered %d + dominated %d ≠ points %d",
			len(res.Frontier()), res.Stats.Dominated, len(res.Points))
	}
}

func TestSweepDefaultsAndValidation(t *testing.T) {
	nodes := PaperModels(4)
	// Zero config: DefaultAlphaSweep, DefaultAxes.
	res, err := Sweep(nodes, 10_000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty result from default sweep")
	}
	if got := len(res.Points[0].Objectives); got != len(DefaultAxes()) {
		t.Errorf("objective vector has %d entries, want %d", got, len(DefaultAxes()))
	}
	if _, err := Sweep(nil, 100, Config{}); err == nil {
		t.Error("nil nodes accepted")
	}
	if _, err := Sweep(nodes, 0, Config{}); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := Sweep(nodes, 100, Config{Alphas: []float64{-0.1}}); err == nil {
		t.Error("out-of-range alpha accepted")
	}
	if _, err := Sweep(nodes, 100, Config{Constraints: opt.Constraints{MinSize: -1}}); err == nil {
		t.Error("negative MinSize accepted")
	}
}

func TestSweepWithMinSizeMatchesColdConstrainedPath(t *testing.T) {
	nodes := PaperModels(8)
	total := 80_000
	cons := opt.Constraints{MinSize: 2_000}
	res, err := Sweep(nodes, total, Config{Alphas: []float64{0.5, 0.9, 1}, Constraints: cons, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		want, err := opt.OptimizeWithConstraints(nodes, total, p.Alpha, cons)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Plan, want) {
			t.Errorf("α=%v: constrained sweep plan diverges from OptimizeWithConstraints", p.Alpha)
		}
		for _, s := range p.Plan.Sizes {
			if float64(s) < cons.MinSize-1 {
				t.Errorf("α=%v: size %d below floor %v", p.Alpha, s, cons.MinSize)
			}
		}
	}
}

func TestExactDegenerateSinglePoint(t *testing.T) {
	nodes := []opt.NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 100},
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 100},
	}
	res, err := Exact(nodes, 1000, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Errorf("degenerate frontier has %d points, want 1", len(res.Points))
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	nodes := PaperModels(8)
	res, err := Sweep(nodes, 100_000, Config{Alphas: UniformAlphas(9), Telemetry: reg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("frontier_sweeps_total").Value(); got != 1 {
		t.Errorf("frontier_sweeps_total = %d, want 1", got)
	}
	if got := reg.Counter("frontier_solves_total").Value(); got != int64(res.Stats.Solves) {
		t.Errorf("frontier_solves_total = %d, want %d", got, res.Stats.Solves)
	}
	if got := reg.Counter("frontier_warm_solves_total").Value(); got != int64(res.Stats.WarmSolves) {
		t.Errorf("frontier_warm_solves_total = %d, want %d", got, res.Stats.WarmSolves)
	}
	if got := reg.Counter("frontier_pivots_total").Value(); got != int64(res.Stats.Pivots) {
		t.Errorf("frontier_pivots_total = %d, want %d", got, res.Stats.Pivots)
	}
	if _, err := Exact(nodes, 100_000, Config{Telemetry: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("frontier_exacts_total").Value(); got != 1 {
		t.Errorf("frontier_exacts_total = %d, want 1", got)
	}
}

func TestDominatesVec(t *testing.T) {
	if !DominatesVec([]float64{1, 2, 3}, []float64{1, 2, 4}) {
		t.Error("better-in-one no-worse-elsewhere must dominate")
	}
	if DominatesVec([]float64{1, 2, 3}, []float64{1, 2, 3}) {
		t.Error("equal vectors do not dominate")
	}
	if DominatesVec([]float64{1, 5}, []float64{2, 4}) {
		t.Error("trade-off vectors are incomparable")
	}
	if DominatesVec([]float64{1, 2}, []float64{1, 2, 3}) {
		t.Error("length mismatch must not dominate")
	}
	// Sub-tolerance differences are ties.
	if DominatesVec([]float64{1 - 1e-12, 2}, []float64{1, 2}) {
		t.Error("sub-tolerance improvement must not dominate")
	}
}

func TestUniformAlphas(t *testing.T) {
	a := UniformAlphas(5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !reflect.DeepEqual(a, want) {
		t.Errorf("got %v, want %v", a, want)
	}
	if got := UniformAlphas(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("n<2 must clamp to the two endpoints, got %v", got)
	}
}

