// Package frontier enumerates the time/dirty-energy Pareto frontier
// (paper §IV, Figures 5–6) as a first-class subsystem: warm-started
// α-sweeps, exact breakpoint bisection, and N-dimensional dominance
// filtering over an extensible objective vector, exposed to callers as
// a library, an HTTP service (service.go), and `paretobench -frontier`.
//
// # Why warm starts
//
// Every frontier sample solves the same sizing LP under a different
// objective — the constraint set (per-node time models, Σx = N) does
// not depend on α. internal/lp retains the slab tableau and optimal
// basis across solves, so moving to the next α is a primal-simplex
// re-optimization from the previous vertex: a handful of pivots
// instead of a full two-phase solve. Sweep chains re-solves within
// each worker's contiguous α range; at 64 nodes × 41 α values the
// warm sweep is >5× faster than cold solving (BenchmarkFrontier).
//
// # Determinism and cold equivalence
//
// The lp solver extracts solutions from the basis *set* against the
// original constraint rows, so a warm re-solve is bit-identical to a
// cold solve that reaches the same basis, and plans are recomputed
// from rounded integer sizes. Sweep output is therefore deep-equal to
// opt.Frontier and Exact to opt.ExactFrontier, at any worker count —
// pinned by TestSweepEquivalentToColdFrontier under -race.
//
// # Non-convexity
//
// Scalarization only reaches the convex hull of the frontier, and the
// bi-objective workload-distribution results in PAPERS.md show real
// profiles are non-convex — so the sweep enumerates and
// dominance-filters rather than assuming convexity, and the objective
// vector is open-ended (Axis) so callers can rank plans on dimensions
// the LP never saw (total node-seconds, peak partition share, total
// energy under a power model).
package frontier

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"pareto/internal/lp"
	"pareto/internal/opt"
	"pareto/internal/parallel"
	"pareto/internal/telemetry"
)

// Axis is one dimension of the extended objective vector: a name for
// reporting and an evaluator over the solved plan. Lower is better on
// every axis (costs, not utilities).
type Axis struct {
	Name string
	Eval func(nodes []opt.NodeModel, p *opt.Plan) float64
}

// MakespanAxis is the plan's predicted makespan (seconds).
func MakespanAxis() Axis {
	return Axis{Name: "makespan_s", Eval: func(_ []opt.NodeModel, p *opt.Plan) float64 {
		return p.Makespan
	}}
}

// DirtyEnergyAxis is the plan's predicted dirty energy (joules).
func DirtyEnergyAxis() Axis {
	return Axis{Name: "dirty_energy_j", Eval: func(_ []opt.NodeModel, p *opt.Plan) float64 {
		return p.DirtyEnergy
	}}
}

// NodeSecondsAxis is total busy node-seconds Σ f_i(x_i) over loaded
// nodes — the "bill" for the plan, distinct from the makespan: a plan
// that spreads work to meet a deadline can burn strictly more compute
// than a consolidated one. This is the default third dimension.
func NodeSecondsAxis() Axis {
	return Axis{Name: "node_seconds", Eval: func(nodes []opt.NodeModel, p *opt.Plan) float64 {
		var s float64
		for i, n := range nodes {
			if p.Sizes[i] <= 0 {
				continue
			}
			s += n.Time.Predict(float64(p.Sizes[i]))
		}
		return s
	}}
}

// PeakShareAxis is the largest partition's share of the total — a
// skew/robustness axis (1/p is perfectly balanced, 1.0 is fully
// consolidated).
func PeakShareAxis() Axis {
	return Axis{Name: "peak_share", Eval: func(_ []opt.NodeModel, p *opt.Plan) float64 {
		total, peak := 0, 0
		for _, s := range p.Sizes {
			total += s
			if s > peak {
				peak = s
			}
		}
		if total == 0 {
			return 0
		}
		return float64(peak) / float64(total)
	}}
}

// TotalEnergyAxis is total (dirty + green) energy in joules under
// per-node full-power draws, watts[i] being node i's total power.
func TotalEnergyAxis(watts []float64) Axis {
	return Axis{Name: "total_energy_j", Eval: func(nodes []opt.NodeModel, p *opt.Plan) float64 {
		var e float64
		for i, n := range nodes {
			if p.Sizes[i] <= 0 || i >= len(watts) {
				continue
			}
			e += watts[i] * n.Time.Predict(float64(p.Sizes[i]))
		}
		return e
	}}
}

// DefaultAxes is the standard objective vector: makespan, dirty
// energy, and total node-seconds.
func DefaultAxes() []Axis {
	return []Axis{MakespanAxis(), DirtyEnergyAxis(), NodeSecondsAxis()}
}

// DominatesVec reports whether objective vector a Pareto-dominates b:
// no worse on every axis, strictly better on at least one, with the
// same absolute tolerance discipline as opt.Dominates.
func DominatesVec(a, b []float64) bool {
	const tol = 1e-9
	if len(a) != len(b) {
		return false
	}
	better := false
	for i := range a {
		if a[i] > b[i]+tol {
			return false
		}
		if a[i] < b[i]-tol {
			better = true
		}
	}
	return better
}

// Point is one frontier sample: the classic 2-D FrontierPoint plus the
// extended objective vector and solve provenance.
type Point struct {
	opt.FrontierPoint
	// Objectives holds one value per configured Axis, in axis order.
	Objectives []float64
	// Warm reports whether the sample's LP solve reused a retained
	// basis.
	Warm bool
	// Pivots is the simplex pivot count this sample cost.
	Pivots int
	// Dominated marks samples pruned by N-dimensional dominance
	// filtering; they remain in Result.Points (the 2-D frontier
	// contract is unchanged) but are excluded from Result.Frontier().
	Dominated bool
}

// Stats aggregates solve effort across one enumeration.
type Stats struct {
	// Solves is the number of LP solves performed.
	Solves int
	// WarmSolves counts solves that reused a retained basis.
	WarmSolves int
	// Pivots is the total simplex pivot count across all solves.
	Pivots int
	// WarmPivots is the pivot count spent in warm re-solves only.
	WarmPivots int
	// Breakpoints is the number of distinct frontier points found.
	Breakpoints int
	// Dominated is the number of samples pruned by dominance filtering.
	Dominated int
	// Elapsed is the wall-clock enumeration time.
	Elapsed time.Duration
}

// Config parameterizes Sweep and Exact. The zero value is usable:
// DefaultAlphaSweep α values, GOMAXPROCS workers, DefaultAxes.
type Config struct {
	// Alphas are the scalarization weights to sample (Sweep only).
	// Empty means opt.DefaultAlphaSweep. Order is irrelevant: results
	// are canonical (ascending α).
	Alphas []float64
	// Workers bounds enumeration parallelism; ≤ 0 means GOMAXPROCS.
	Workers int
	// Axes is the objective vector for dominance filtering; empty
	// means DefaultAxes.
	Axes []Axis
	// Constraints are passed through to the sizing LP.
	Constraints opt.Constraints
	// Tol is the point-coincidence tolerance: dedup for Sweep (default
	// 1e-9, matching opt.Frontier) and breakpoint convergence for
	// Exact (default 1e-6, matching opt.ExactFrontier).
	Tol float64
	// Telemetry receives frontier_* metrics when non-nil.
	Telemetry *telemetry.Registry
	// Cache, when non-nil, memoizes service enumerations keyed by the
	// model-source fingerprint and request parameters (see cache.go).
	// Only the HTTP Service consults it; direct Sweep/Exact calls
	// always enumerate.
	Cache *Cache
}

func (c Config) axes() []Axis {
	if len(c.Axes) == 0 {
		return DefaultAxes()
	}
	return c.Axes
}

// Result is a dominance-filtered frontier enumeration.
type Result struct {
	// Points is the canonical point list (ascending α, adjacent
	// duplicates collapsed), including dominated samples with their
	// flag set — the embedded FrontierPoints are exactly what the cold
	// opt.Frontier / opt.ExactFrontier paths produce.
	Points []Point
	// Stats is the solve-effort accounting.
	Stats Stats
}

// Frontier returns the non-dominated points only.
func (r *Result) Frontier() []Point {
	out := make([]Point, 0, len(r.Points))
	for _, p := range r.Points {
		if !p.Dominated {
			out = append(out, p)
		}
	}
	return out
}

// chain is one worker's warm-start chain: a lazily built solver whose
// basis carries from one α to the next, plus its solve accounting.
type chain struct {
	nodes []opt.NodeModel
	total int
	cons  opt.Constraints
	s     *lp.Solver

	solves, warm, pivots, warmPivots int
}

// solve returns the sizing plan at α, warm-starting from the chain's
// previous solve when one exists.
func (c *chain) solve(alpha float64) (*opt.Plan, *lp.Solution, error) {
	if c.s == nil {
		prob, err := opt.SizingLP(c.nodes, c.total, alpha, c.cons)
		if err != nil {
			return nil, nil, err
		}
		c.s = prob.NewSolver()
	}
	sol, err := c.s.ReSolve(opt.SizingObjective(c.nodes, c.total, alpha))
	if err != nil {
		return nil, nil, fmt.Errorf("frontier: solve at alpha %v: %w", alpha, err)
	}
	c.solves++
	c.pivots += sol.Iterations
	if sol.Warm {
		c.warm++
		c.warmPivots += sol.Iterations
	}
	x := opt.UnitsFromShares(sol.X[:len(c.nodes)], c.total)
	return opt.PlanFromX(c.nodes, c.total, alpha, x), sol, nil
}

func (c *chain) addTo(st *Stats) {
	st.Solves += c.solves
	st.WarmSolves += c.warm
	st.Pivots += c.pivots
	st.WarmPivots += c.warmPivots
}

func validateSweep(nodes []opt.NodeModel, total int, cfg Config) (alphas []float64, cons opt.Constraints, err error) {
	if len(nodes) == 0 {
		return nil, cons, errors.New("frontier: no nodes")
	}
	if total <= 0 {
		return nil, cons, fmt.Errorf("frontier: total data units %d, need ≥ 1", total)
	}
	alphas = cfg.Alphas
	if len(alphas) == 0 {
		alphas = opt.DefaultAlphaSweep()
	}
	sorted := make([]float64, len(alphas))
	copy(sorted, alphas)
	sort.Float64s(sorted)
	// Drop exact duplicates and validate range.
	out := sorted[:0]
	for i, a := range sorted {
		if a < 0 || a > 1 || math.IsNaN(a) {
			return nil, cons, fmt.Errorf("frontier: alpha %v out of [0,1]", a)
		}
		if i > 0 && a == sorted[i-1] {
			continue
		}
		out = append(out, a)
	}
	cons = cfg.Constraints
	if cons.MinSize < 0 {
		return nil, cons, fmt.Errorf("frontier: negative MinSize %v", cons.MinSize)
	}
	// Mirror OptimizeWithConstraints' cap so results match the cold path.
	if cap := float64(total) / float64(len(nodes)); cons.MinSize > cap {
		cons.MinSize = cap
	}
	return out, cons, nil
}

// Sweep samples the frontier at cfg.Alphas with warm-started solves
// chained inside each worker's contiguous α range, then canonicalizes
// (ascending α, adjacent duplicates collapsed — the opt.Frontier
// contract) and dominance-filters over cfg.Axes. The embedded
// FrontierPoints are bit-identical to cold opt.Frontier output at any
// worker count.
func Sweep(nodes []opt.NodeModel, total int, cfg Config) (*Result, error) {
	start := time.Now()
	alphas, cons, err := validateSweep(nodes, total, cfg)
	if err != nil {
		return nil, err
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	axes := cfg.axes()

	n := len(alphas)
	pts := make([]Point, n)
	// parallel.ForErr hands each chunk [lo,hi) to one worker goroutine.
	// A fresh chain per chunk keeps the warm-start sequence (cold at
	// alphas[lo], warm for the rest) deterministic for a given (n,
	// workers) split, and bit-identity with cold solves makes the
	// assembled points independent of the split entirely.
	chainAt := make([]*chain, n) // chunk-start slot → its chain, for stats
	_, err = parallel.ForErr(n, cfg.Workers, func(lo, hi int) error {
		c := &chain{nodes: nodes, total: total, cons: cons}
		chainAt[lo] = c
		for i := lo; i < hi; i++ {
			plan, sol, err := c.solve(alphas[i])
			if err != nil {
				return err
			}
			pts[i] = newPoint(nodes, alphas[i], plan, sol, axes)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Points: canonicalize(pts, tol)}
	for _, c := range chainAt {
		if c != nil {
			c.addTo(&res.Stats)
		}
	}
	finish(res, nodes, axes, start, cfg.Telemetry, "sweep")
	return res, nil
}

func newPoint(nodes []opt.NodeModel, alpha float64, plan *opt.Plan, sol *lp.Solution, axes []Axis) Point {
	pt := Point{
		FrontierPoint: opt.FrontierPoint{
			Alpha:       alpha,
			Makespan:    plan.Makespan,
			DirtyEnergy: plan.DirtyEnergy,
			Plan:        plan,
		},
		Warm:   sol.Warm,
		Pivots: sol.Iterations,
	}
	pt.Objectives = make([]float64, len(axes))
	for k, ax := range axes {
		pt.Objectives[k] = ax.Eval(nodes, plan)
	}
	return pt
}

// canonicalize applies the opt.CanonicalizeFrontier contract to
// extended points: ascending α (inputs are pre-sorted for Sweep,
// in-order for Exact), adjacent objective-space duplicates collapsed
// to their lowest-α representative.
func canonicalize(pts []Point, tol float64) []Point {
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Alpha < pts[j].Alpha })
	out := pts[:0:len(pts)]
	for _, p := range pts {
		if len(out) == 0 || !opt.SamePoint(out[len(out)-1].FrontierPoint, p.FrontierPoint, tol) {
			out = append(out, p)
		}
	}
	return out
}

// finish runs dominance filtering, fills derived stats, and emits
// telemetry.
func finish(res *Result, nodes []opt.NodeModel, axes []Axis, start time.Time, reg *telemetry.Registry, kind string) {
	dominated := 0
	for i := range res.Points {
		for j := range res.Points {
			if i != j && DominatesVec(res.Points[j].Objectives, res.Points[i].Objectives) {
				res.Points[i].Dominated = true
				dominated++
				break
			}
		}
	}
	res.Stats.Dominated = dominated
	res.Stats.Breakpoints = len(res.Points) - dominated
	res.Stats.Elapsed = time.Since(start)

	if reg != nil {
		reg.Counter("frontier_" + kind + "s_total").Inc()
		reg.Counter("frontier_solves_total").Add(int64(res.Stats.Solves))
		reg.Counter("frontier_warm_solves_total").Add(int64(res.Stats.WarmSolves))
		reg.Counter("frontier_pivots_total").Add(int64(res.Stats.Pivots))
		reg.Counter("frontier_breakpoints_total").Add(int64(res.Stats.Breakpoints))
		reg.Counter("frontier_dominated_total").Add(int64(dominated))
		reg.Histogram("frontier_enumeration_ns", telemetry.LatencyBuckets()).
			Observe(res.Stats.Elapsed.Nanoseconds())
	}
}

// exactMaxDepth mirrors opt's bisection depth budget: the 1e-9 α-width
// floor converges first from [0,1], so exhaustion means an incomplete
// frontier and is surfaced via opt.ErrTruncated.
const exactMaxDepth = 40

// Exact enumerates every distinct frontier vertex by recursive α
// bisection (the opt.ExactFrontier algorithm) with warm-started
// solves: the recursion carries a solver chain down its in-order
// walk, and when cfg.Workers > 1 the top levels of the recursion tree
// fork into goroutines, each subtree chaining its own solver. Spawn
// depth is a pure function of Workers, so chains — and therefore
// Stats — are deterministic, and bit-identity makes the points
// deep-equal to cold opt.ExactFrontier regardless of parallelism.
func Exact(nodes []opt.NodeModel, total int, cfg Config) (*Result, error) {
	start := time.Now()
	_, cons, err := validateSweep(nodes, total, cfg)
	if err != nil {
		return nil, err
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	axes := cfg.axes()

	// Spawn goroutines only in the top ⌈log2(workers)⌉ levels.
	workers := parallel.Workers(1<<20, cfg.Workers)
	spawnDepth := 0
	for 1<<spawnDepth < workers {
		spawnDepth++
	}

	root := &chain{nodes: nodes, total: total, cons: cons}
	solve := func(c *chain, alpha float64) (Point, error) {
		plan, sol, err := c.solve(alpha)
		if err != nil {
			return Point{}, err
		}
		return newPoint(nodes, alpha, plan, sol, axes), nil
	}
	lo, err := solve(root, 0)
	if err != nil {
		return nil, err
	}
	hi, err := solve(root, 1)
	if err != nil {
		return nil, err
	}

	same := func(a, b Point) bool { return opt.SamePoint(a.FrontierPoint, b.FrontierPoint, tol) }
	// rec returns the points strictly inside (a, b), in α order.
	var rec func(c *chain, a, b Point, depth int) subResult
	rec = func(c *chain, a, b Point, depth int) subResult {
		if same(a, b) || b.Alpha-a.Alpha < 1e-9 {
			return subResult{}
		}
		if depth > exactMaxDepth {
			return subResult{truncated: true}
		}
		mid, err := solve(c, (a.Alpha+b.Alpha)/2)
		if err != nil {
			return subResult{err: err}
		}
		var left subResult
		if depth < spawnDepth {
			// Fork the left half onto its own goroutine with a fresh
			// chain; the right half continues on this chain inline.
			lc := &chain{nodes: nodes, total: total, cons: cons}
			done := make(chan subResult, 1)
			go func() {
				sr := rec(lc, a, mid, depth+1)
				sr.chains = append(sr.chains, lc)
				done <- sr
			}()
			right := rec(c, mid, b, depth+1)
			left = <-done
			return mergeSub(left, mid, right, same, a, b)
		}
		left = rec(c, a, mid, depth+1)
		right := rec(c, mid, b, depth+1)
		return mergeSub(left, mid, right, same, a, b)
	}
	sub := rec(root, lo, hi, 0)
	if sub.err != nil {
		return nil, sub.err
	}

	pts := make([]Point, 0, len(sub.pts)+2)
	pts = append(pts, lo)
	pts = append(pts, sub.pts...)
	if !same(lo, hi) {
		pts = append(pts, hi)
	}
	res := &Result{Points: canonicalize(pts, tol)}
	root.addTo(&res.Stats)
	for _, c := range sub.chains {
		c.addTo(&res.Stats)
	}
	finish(res, nodes, axes, start, cfg.Telemetry, "exact")
	if sub.truncated {
		return res, fmt.Errorf("frontier: exact enumeration incomplete beyond depth %d: %w", exactMaxDepth, opt.ErrTruncated)
	}
	return res, nil
}

// subResult is one bisection subtree's outcome: the points strictly
// inside its interval (in α order), the solver chains it consumed
// (for stats), and whether any branch hit the depth budget.
type subResult struct {
	pts       []Point
	chains    []*chain
	truncated bool
	err       error
}

// mergeSub assembles an in-order subtree result: left points, the
// midpoint (if distinct from both interval endpoints — the
// opt.ExactFrontier inclusion rule), then right points.
func mergeSub(left subResult, mid Point, right subResult, same func(a, b Point) bool, a, b Point) subResult {
	out := subResult{
		pts:       left.pts,
		chains:    append(left.chains, right.chains...),
		truncated: left.truncated || right.truncated,
		err:       left.err,
	}
	if out.err == nil {
		out.err = right.err
	}
	if !same(mid, a) && !same(mid, b) {
		out.pts = append(out.pts, mid)
	}
	out.pts = append(out.pts, right.pts...)
	return out
}
