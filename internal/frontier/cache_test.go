package frontier

import (
	"bytes"
	"net/http"
	"testing"

	"pareto/internal/opt"
	"pareto/internal/telemetry"
)

// mutableSource is a ModelSource whose models can be swapped between
// requests, standing in for the replanner installing new fits.
type mutableSource struct {
	nodes []opt.NodeModel
	total int
}

func (s *mutableSource) FrontierModels() ([]opt.NodeModel, int, error) {
	return s.nodes, s.total, nil
}

func cachedService(t *testing.T) (*Service, *mutableSource, *Cache, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cache := NewCache(0, reg)
	src := &mutableSource{nodes: PaperModels(6), total: 50_000}
	svc := NewService(src, Config{Telemetry: reg, Cache: cache})
	return svc, src, cache, reg
}

func TestCacheHitServesIdenticalBytes(t *testing.T) {
	svc, _, cache, reg := cachedService(t)
	rec1, _ := getFrontier(t, svc, "/frontier?alphas=9")
	rec2, _ := getFrontier(t, svc, "/frontier?alphas=9")
	if rec1.Code != http.StatusOK || rec2.Code != http.StatusOK {
		t.Fatalf("status %d / %d", rec1.Code, rec2.Code)
	}
	if !bytes.Equal(rec1.Body.Bytes(), rec2.Body.Bytes()) {
		t.Error("cached response differs from the enumeration that seeded it")
	}
	if hits := reg.Counter("frontier_cache_hits").Value(); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	if misses := reg.Counter("frontier_cache_misses").Value(); misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
}

func TestCacheKeyedOnRequestParams(t *testing.T) {
	svc, _, cache, reg := cachedService(t)
	for _, url := range []string{
		"/frontier?alphas=9",
		"/frontier?alphas=11",
		"/frontier?alphas=9&exact=1",
		"/frontier?alphas=9&tol=0.0005",
	} {
		rec, _ := getFrontier(t, svc, url)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, rec.Code, rec.Body.String())
		}
	}
	if hits := reg.Counter("frontier_cache_hits").Value(); hits != 0 {
		t.Errorf("distinct requests hit the cache %d times", hits)
	}
	if misses := reg.Counter("frontier_cache_misses").Value(); misses != 4 {
		t.Errorf("misses = %d, want 4", misses)
	}
	if cache.Len() != 4 {
		t.Errorf("cache holds %d entries, want 4", cache.Len())
	}
	// Worker count is excluded from the key: results are worker-independent.
	rec, _ := getFrontier(t, svc, "/frontier?alphas=9&workers=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if hits := reg.Counter("frontier_cache_hits").Value(); hits != 1 {
		t.Errorf("worker-count variation missed the cache (hits = %d)", hits)
	}
}

func TestCacheMissesOnModelChange(t *testing.T) {
	svc, src, _, reg := cachedService(t)
	getFrontier(t, svc, "/frontier?alphas=9")
	// Perturb one node's fit — a different model source must not be
	// served from a stale enumeration.
	src.nodes = append([]opt.NodeModel(nil), src.nodes...)
	src.nodes[0].Time.Slope *= 1.01
	rec, _ := getFrontier(t, svc, "/frontier?alphas=9")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if hits := reg.Counter("frontier_cache_hits").Value(); hits != 0 {
		t.Errorf("changed models hit the cache %d times", hits)
	}
	if misses := reg.Counter("frontier_cache_misses").Value(); misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
}

func TestCacheInvalidate(t *testing.T) {
	svc, _, cache, reg := cachedService(t)
	getFrontier(t, svc, "/frontier?alphas=9")
	cache.Invalidate()
	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries after Invalidate", cache.Len())
	}
	if n := reg.Counter("frontier_cache_invalidations").Value(); n != 1 {
		t.Errorf("invalidations = %d, want 1", n)
	}
	rec, _ := getFrontier(t, svc, "/frontier?alphas=9")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if hits := reg.Counter("frontier_cache_hits").Value(); hits != 0 {
		t.Errorf("invalidated entry served as a hit (%d)", hits)
	}
	// A nil cache is safe to invalidate (replanner may run uncached).
	var nilCache *Cache
	nilCache.Invalidate()
}

func TestCacheFIFOEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	cache := NewCache(2, reg)
	src := &mutableSource{nodes: PaperModels(4), total: 10_000}
	svc := NewService(src, Config{Telemetry: reg, Cache: cache})
	getFrontier(t, svc, "/frontier?alphas=5")
	getFrontier(t, svc, "/frontier?alphas=6")
	getFrontier(t, svc, "/frontier?alphas=7") // evicts alphas=5
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
	getFrontier(t, svc, "/frontier?alphas=5")
	if misses := reg.Counter("frontier_cache_misses").Value(); misses != 4 {
		t.Errorf("evicted entry not re-enumerated (misses = %d, want 4)", misses)
	}
	getFrontier(t, svc, "/frontier?alphas=7")
	if hits := reg.Counter("frontier_cache_hits").Value(); hits != 1 {
		t.Errorf("surviving entry missed (hits = %d, want 1)", hits)
	}
}

func TestFingerprintExactness(t *testing.T) {
	nodes := PaperModels(3)
	fp := Fingerprint(nodes, 1000)
	if fp != Fingerprint(PaperModels(3), 1000) {
		t.Error("identical inputs fingerprint differently")
	}
	for _, mutate := range []func([]opt.NodeModel) ([]opt.NodeModel, int){
		func(n []opt.NodeModel) ([]opt.NodeModel, int) { n[0].Time.Slope += 1e-15; return n, 1000 },
		func(n []opt.NodeModel) ([]opt.NodeModel, int) { n[1].Time.Intercept += 1e-15; return n, 1000 },
		func(n []opt.NodeModel) ([]opt.NodeModel, int) { n[2].DirtyRate += 1e-12; return n, 1000 },
		func(n []opt.NodeModel) ([]opt.NodeModel, int) { return n[:2], 1000 },
		func(n []opt.NodeModel) ([]opt.NodeModel, int) { return n, 1001 },
	} {
		m := append([]opt.NodeModel(nil), nodes...)
		mm, total := mutate(m)
		if Fingerprint(mm, total) == fp {
			t.Error("a changed input collided with the original fingerprint")
		}
	}
}
