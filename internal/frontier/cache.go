// Frontier enumeration cache. Repeat /frontier queries against an
// unchanged plan re-run the whole α sweep for bit-identical output;
// the cache memoizes enumerations keyed by an exact fingerprint of
// everything the result is a function of — the model source (node
// fits, dirty rates, total units) and the request parameters (mode,
// α list, tolerance, constraints, axes). Worker count is deliberately
// excluded: enumeration results are bit-identical at any parallelism.
// The replanning loop invalidates the cache whenever it installs new
// models, so a cached frontier can never outlive the plan it was
// enumerated from.
package frontier

import (
	"math"
	"strconv"
	"sync"

	"pareto/internal/opt"
	"pareto/internal/telemetry"
)

// DefaultCacheSize bounds a Cache's entries when NewCache is given a
// nonpositive size.
const DefaultCacheSize = 64

// Cache memoizes frontier enumerations. Safe for concurrent use.
// Cached Results are shared — callers must treat them as immutable,
// which every enumeration consumer already does.
type Cache struct {
	reg *telemetry.Registry

	mu      sync.Mutex
	max     int
	entries map[string]cacheEntry
	order   []string // insertion order, for FIFO eviction
}

type cacheEntry struct {
	res       *Result
	truncated bool
}

// NewCache creates a cache holding at most max enumerations (FIFO
// eviction; max ≤ 0 means DefaultCacheSize). reg, when non-nil,
// receives frontier_cache_hits / frontier_cache_misses /
// frontier_cache_invalidations counters.
func NewCache(max int, reg *telemetry.Registry) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{reg: reg, max: max, entries: make(map[string]cacheEntry)}
}

// Invalidate drops every cached enumeration. Called when new models
// are installed (replanning) so stale frontiers cannot be served.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	clear(c.entries)
	c.order = c.order[:0]
	c.mu.Unlock()
	c.reg.Counter("frontier_cache_invalidations").Inc()
}

// Len returns the number of cached enumerations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// lookup returns the cached enumeration for key, counting a hit or
// miss.
func (c *Cache) lookup(key string) (*Result, bool, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.reg.Counter("frontier_cache_hits").Inc()
		return e.res, e.truncated, true
	}
	c.reg.Counter("frontier_cache_misses").Inc()
	return nil, false, false
}

// store caches an enumeration under key, evicting the oldest entry
// past capacity.
func (c *Cache) store(key string, res *Result, truncated bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.order = append(c.order, key)
		for len(c.order) > c.max {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.entries[key] = cacheEntry{res: res, truncated: truncated}
}

// Fingerprint returns an exact textual fingerprint of a model source:
// the bit patterns of every node's time fit and dirty rate, plus the
// total. Equal fingerprints mean equal enumeration inputs — no float
// rounding, no hashing collisions.
func Fingerprint(nodes []opt.NodeModel, total int) string {
	// 3 floats per node at ≤ 17 hex digits plus separators.
	buf := make([]byte, 0, 8+len(nodes)*56)
	buf = strconv.AppendInt(buf, int64(total), 16)
	for _, n := range nodes {
		buf = append(buf, '|')
		buf = strconv.AppendUint(buf, math.Float64bits(n.Time.Slope), 16)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, math.Float64bits(n.Time.Intercept), 16)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, math.Float64bits(n.DirtyRate), 16)
	}
	return string(buf)
}

// cacheKey extends a model fingerprint with every request parameter
// the enumeration depends on.
func cacheKey(fp string, exact bool, cfg Config) string {
	buf := make([]byte, 0, len(fp)+64+len(cfg.Alphas)*17)
	buf = append(buf, fp...)
	if exact {
		buf = append(buf, ";exact;"...)
	} else {
		buf = append(buf, ";sweep;"...)
	}
	buf = strconv.AppendUint(buf, math.Float64bits(cfg.Tol), 16)
	buf = append(buf, ';')
	buf = strconv.AppendUint(buf, math.Float64bits(cfg.Constraints.MinSize), 16)
	for _, a := range cfg.Alphas {
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, math.Float64bits(a), 16)
	}
	buf = append(buf, ';')
	for _, ax := range cfg.axes() {
		buf = append(buf, ax.Name...)
		buf = append(buf, ',')
	}
	return string(buf)
}
