package frontier

import (
	"testing"

	"pareto/internal/opt"
)

// benchNodes/benchAlphas pin the benchmark scale the EXPERIMENTS.md
// warm-vs-cold table reports: 64 profiled nodes, 41-sample α ladder.
const benchNodes = 64

func benchAlphas() []float64 { return denseAlphas() }

// BenchmarkFrontier compares warm-started sweep enumeration against
// the cold per-α solve path on the same inputs. warm64x41/serial is
// the headline number: one solver chain re-solving 41 objectives;
// cold64x41 rebuilds and re-solves the LP from scratch at every α.
func BenchmarkFrontier(b *testing.B) {
	nodes := PaperModels(benchNodes)
	total := 1_000_000
	alphas := benchAlphas()

	b.Run("warm64x41/serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Sweep(nodes, total, Config{Alphas: alphas, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm64x41/parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Sweep(nodes, total, Config{Alphas: alphas}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold64x41", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := opt.Frontier(nodes, total, alphas); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Exact(nodes, total, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
