package frontier

import (
	"pareto/internal/opt"
	"pareto/internal/sampling"
)

// PaperModels builds p node models shaped like the paper's evaluation
// cluster: four machine classes with relative speeds 4/3/2/1 and
// full-power draws 440/345/250/155 W, cycled across nodes. A small
// deterministic per-node perturbation keeps every profile distinct, so
// the sizing LP has a unique optimal vertex at every α — the regime
// the warm-vs-cold equivalence guarantee is exercised in (and the one
// real profiled clusters are in: no two machines measure identically).
func PaperModels(p int) []opt.NodeModel {
	speeds := [4]float64{4, 3, 2, 1}
	watts := [4]float64{440, 345, 250, 155}
	nodes := make([]opt.NodeModel, p)
	for i := range nodes {
		class := i % 4
		gen := float64(i / 4)
		nodes[i] = opt.NodeModel{
			Time: sampling.LinearFit{
				Slope:     4e-6 / speeds[class] * (1 + 0.003*gen),
				Intercept: 0.05 * float64(class) * (1 + 0.003*gen),
			},
			// Dirty rate ≈ 55% of full draw (the rest assumed covered by
			// the green supply), nudged per generation.
			DirtyRate: watts[class]*0.55 + 0.7*gen,
		}
	}
	return nodes
}

// UniformAlphas returns n evenly spaced α values spanning [0, 1]
// inclusive, ascending. n must be ≥ 2 (both endpoints); smaller
// requests are clamped to 2.
func UniformAlphas(n int) []float64 {
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n-1)
	}
	return out
}
