package frontier

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pareto/internal/opt"
	"pareto/internal/sampling"
	"pareto/internal/telemetry"
)

func testService(t *testing.T) (*Service, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	src := StaticSource{Nodes: PaperModels(8), Total: 100_000}
	return NewService(src, Config{Telemetry: reg}), reg
}

func getFrontier(t *testing.T, h http.Handler, url string) (*httptest.ResponseRecorder, *responseJSON) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp responseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s: bad JSON: %v\n%s", url, err, rec.Body.String())
	}
	return rec, &resp
}

func TestServiceSweepJSON(t *testing.T) {
	svc, _ := testService(t)
	rec, resp := getFrontier(t, svc, "/frontier?alphas=11")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	if resp.Nodes != 8 || resp.Total != 100_000 || resp.Exact {
		t.Errorf("header fields: %+v", resp)
	}
	if len(resp.Points) == 0 {
		t.Fatal("no points")
	}
	if len(resp.Axes) != len(DefaultAxes()) {
		t.Errorf("axes %v", resp.Axes)
	}
	for i, p := range resp.Points {
		if p.Dominated {
			t.Errorf("point %d: dominated point served without all=1", i)
		}
		if len(p.Objectives) != len(resp.Axes) {
			t.Errorf("point %d: %d objectives for %d axes", i, len(p.Objectives), len(resp.Axes))
		}
		if i > 0 && p.Alpha <= resp.Points[i-1].Alpha {
			t.Errorf("points not ascending in α at %d", i)
		}
	}
	if resp.Stats.Solves == 0 || resp.Stats.WarmSolves == 0 {
		t.Errorf("solve stats missing: %+v", resp.Stats)
	}
}

func TestServiceExactAndParams(t *testing.T) {
	svc, _ := testService(t)
	rec, resp := getFrontier(t, svc, "/frontier?exact=1&tol=0.0001&workers=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Exact {
		t.Error("exact flag not echoed")
	}
	if resp.Stats.Breakpoints == 0 {
		t.Error("exact enumeration reported zero breakpoints")
	}
	// Explicit α list.
	_, resp = getFrontier(t, svc, "/frontier?alpha=0,0.5,1")
	if resp == nil || len(resp.Points) == 0 || len(resp.Points) > 3 {
		t.Fatalf("explicit alpha list: %+v", resp)
	}
}

func TestServiceErrors(t *testing.T) {
	svc, _ := testService(t)
	req := httptest.NewRequest(http.MethodPost, "/frontier", nil)
	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d", rec.Code)
	}
	for _, url := range []string{
		"/frontier?alphas=1",
		"/frontier?alphas=nope",
		"/frontier?alpha=2",
		"/frontier?alpha=x",
		"/frontier?tol=0",
		"/frontier?tol=1.5",
		"/frontier?workers=-1",
		"/frontier?exact=maybe",
		"/frontier?all=maybe",
	} {
		rec, _ := getFrontier(t, svc, url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

func TestServiceDominatedToggle(t *testing.T) {
	reg := telemetry.NewRegistry()
	// The non-convex two-node profile from the sweep tests: α=0 is
	// dominated on (makespan, node-seconds).
	svc := NewService(StaticSource{Nodes: nonConvexNodes(), Total: 100_000}, Config{
		Axes:      []Axis{MakespanAxis(), NodeSecondsAxis()},
		Telemetry: reg,
	})
	_, def := getFrontier(t, svc, "/frontier?alpha=0,0.5,1")
	_, all := getFrontier(t, svc, "/frontier?alpha=0,0.5,1&all=1")
	if def == nil || all == nil {
		t.Fatal("request failed")
	}
	if def.Dominated == 0 {
		t.Fatal("expected a dominated sample on the non-convex profile")
	}
	if len(all.Points) != len(def.Points)+def.Dominated {
		t.Errorf("all=1 returned %d points, filtered %d + dominated %d",
			len(all.Points), len(def.Points), def.Dominated)
	}
	flagged := 0
	for _, p := range all.Points {
		if p.Dominated {
			flagged++
		}
	}
	if flagged != all.Dominated {
		t.Errorf("flagged %d vs reported %d", flagged, all.Dominated)
	}
}

func TestServiceMountedOnTelemetryMux(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := NewService(StaticSource{Nodes: PaperModels(4), Total: 10_000}, Config{Telemetry: reg})
	mux := reg.Handler()
	Mount(mux, svc)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/frontier?alphas=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/frontier via telemetry mux: %d", resp.StatusCode)
	}
	var out responseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) == 0 {
		t.Fatal("no points over the wire")
	}
	// Telemetry from the request is visible on the same mux.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", mresp.StatusCode)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "frontier_sweeps_total") {
		t.Error("/metrics does not show the frontier sweep counter")
	}
}

func TestServiceSourceError(t *testing.T) {
	svc := NewService(errSource{}, Config{})
	rec, _ := getFrontier(t, svc, "/frontier")
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("source error: status %d", rec.Code)
	}
}

type errSource struct{}

func (errSource) FrontierModels() ([]opt.NodeModel, int, error) {
	return nil, 0, errors.New("profiling not finished")
}

// nonConvexNodes is the fast-and-dirty vs slower-and-green pair used
// by TestSweepNonConvexDominancePruning.
func nonConvexNodes() []opt.NodeModel {
	return []opt.NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 400},
		{Time: sampling.LinearFit{Slope: 0.0011}, DirtyRate: 0},
	}
}
