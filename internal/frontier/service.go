// HTTP surface of the frontier subsystem: GET /frontier serves the
// dominance-filtered Pareto frontier as JSON so a caller can pick a
// time/energy operating point at request time instead of baking α in
// at plan time (cf. Lang et al.'s energy-efficient cluster design,
// PAPERS.md). Mount alongside the telemetry mux:
//
//	mux := reg.Handler()
//	frontier.Mount(mux, frontier.NewService(src, frontier.Config{Telemetry: reg}))
//	http.ListenAndServe(addr, mux)
package frontier

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"pareto/internal/opt"
)

// ModelSource supplies the node models and total data-unit count the
// service enumerates over — a static snapshot, or a live view of the
// planner's latest profiling run.
type ModelSource interface {
	FrontierModels() (nodes []opt.NodeModel, total int, err error)
}

// StaticSource is a fixed ModelSource.
type StaticSource struct {
	Nodes []opt.NodeModel
	Total int
}

// FrontierModels returns the static snapshot.
func (s StaticSource) FrontierModels() ([]opt.NodeModel, int, error) {
	return s.Nodes, s.Total, nil
}

// Service serves frontier enumerations over HTTP. Per-request query
// parameters override the base Config:
//
//	alphas=N          sample N uniform α values in [0,1]
//	alpha=a,b,c       sample an explicit α list
//	exact=1           exact breakpoint bisection instead of sampling
//	tol=T             coincidence/convergence tolerance
//	workers=W         parallelism bound
//	all=1             include dominated points (flagged) in the output
type Service struct {
	source ModelSource
	cfg    Config
}

// NewService creates a frontier service over the given source. cfg
// supplies defaults (axes, telemetry, base α sweep) that requests can
// override.
func NewService(source ModelSource, cfg Config) *Service {
	return &Service{source: source, cfg: cfg}
}

// Mount registers the service at /frontier on the given mux (typically
// the telemetry registry's Handler mux).
func Mount(mux *http.ServeMux, s *Service) {
	mux.Handle("/frontier", s)
}

// pointJSON is one frontier point on the wire.
type pointJSON struct {
	Alpha       float64   `json:"alpha"`
	Makespan    float64   `json:"makespan_s"`
	DirtyEnergy float64   `json:"dirty_energy_j"`
	Objectives  []float64 `json:"objectives"`
	Sizes       []int     `json:"sizes"`
	Warm        bool      `json:"warm"`
	Pivots      int       `json:"pivots"`
	Dominated   bool      `json:"dominated,omitempty"`
}

// statsJSON mirrors Stats with wall time in milliseconds.
type statsJSON struct {
	Solves      int     `json:"solves"`
	WarmSolves  int     `json:"warm_solves"`
	Pivots      int     `json:"pivots"`
	WarmPivots  int     `json:"warm_pivots"`
	Breakpoints int     `json:"breakpoints"`
	Dominated   int     `json:"dominated"`
	ElapsedMs   float64 `json:"elapsed_ms"`
}

// responseJSON is the /frontier reply.
type responseJSON struct {
	Nodes     int         `json:"nodes"`
	Total     int         `json:"total"`
	Exact     bool        `json:"exact"`
	Axes      []string    `json:"axes"`
	Points    []pointJSON `json:"points"`
	Dominated int         `json:"dominated"`
	Truncated bool        `json:"truncated,omitempty"`
	Stats     statsJSON   `json:"stats"`
}

// ServeHTTP handles GET /frontier.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "frontier: GET only", http.StatusMethodNotAllowed)
		return
	}
	cfg := s.cfg
	q := r.URL.Query()
	exact := false
	if v := q.Get("exact"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "frontier: bad exact: "+err.Error(), http.StatusBadRequest)
			return
		}
		exact = b
	}
	if v := q.Get("alphas"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 || n > 100000 {
			http.Error(w, "frontier: alphas must be an integer in [2,100000]", http.StatusBadRequest)
			return
		}
		cfg.Alphas = UniformAlphas(n)
	}
	if v := q.Get("alpha"); v != "" {
		var alphas []float64
		for _, part := range strings.Split(v, ",") {
			a, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				http.Error(w, "frontier: bad alpha list: "+err.Error(), http.StatusBadRequest)
				return
			}
			alphas = append(alphas, a)
		}
		cfg.Alphas = alphas
	}
	if v := q.Get("tol"); v != "" {
		tol, err := strconv.ParseFloat(v, 64)
		if err != nil || tol <= 0 || tol >= 1 {
			http.Error(w, "frontier: tol must be in (0,1)", http.StatusBadRequest)
			return
		}
		cfg.Tol = tol
	}
	if v := q.Get("workers"); v != "" {
		wn, err := strconv.Atoi(v)
		if err != nil || wn < 0 || wn > 4096 {
			http.Error(w, "frontier: workers must be an integer in [0,4096]", http.StatusBadRequest)
			return
		}
		cfg.Workers = wn
	}
	includeAll := false
	if v := q.Get("all"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "frontier: bad all: "+err.Error(), http.StatusBadRequest)
			return
		}
		includeAll = b
	}

	nodes, total, err := s.source.FrontierModels()
	if err != nil {
		http.Error(w, "frontier: model source: "+err.Error(), http.StatusInternalServerError)
		return
	}

	// Serve memoized points when the model fingerprint and request
	// parameters match a previous enumeration; replanning invalidates
	// the cache when it installs new models.
	var key string
	if cfg.Cache != nil {
		key = cacheKey(Fingerprint(nodes, total), exact, cfg)
		if res, truncated, ok := cfg.Cache.lookup(key); ok {
			writeFrontierJSON(w, res, nodes, total, exact, truncated, includeAll, cfg)
			return
		}
	}

	var res *Result
	if exact {
		res, err = Exact(nodes, total, cfg)
	} else {
		res, err = Sweep(nodes, total, cfg)
	}
	truncated := false
	if err != nil {
		if !errors.Is(err, opt.ErrTruncated) {
			status := http.StatusInternalServerError
			if strings.Contains(err.Error(), "out of [0,1]") || strings.Contains(err.Error(), "need ≥ 1") {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		// A truncated exact frontier is still served, flagged.
		truncated = true
	}
	if cfg.Cache != nil {
		cfg.Cache.store(key, res, truncated)
	}
	writeFrontierJSON(w, res, nodes, total, exact, truncated, includeAll, cfg)
}

// writeFrontierJSON renders an enumeration (fresh or cached) as the
// /frontier response. Stats always describe the enumeration that
// produced the points — a cache hit reports the original solve effort,
// not zero work.
func writeFrontierJSON(w http.ResponseWriter, res *Result, nodes []opt.NodeModel, total int, exact, truncated, includeAll bool, cfg Config) {

	resp := responseJSON{
		Nodes:     len(nodes),
		Total:     total,
		Exact:     exact,
		Truncated: truncated,
		Dominated: res.Stats.Dominated,
		Stats: statsJSON{
			Solves:      res.Stats.Solves,
			WarmSolves:  res.Stats.WarmSolves,
			Pivots:      res.Stats.Pivots,
			WarmPivots:  res.Stats.WarmPivots,
			Breakpoints: res.Stats.Breakpoints,
			Dominated:   res.Stats.Dominated,
			ElapsedMs:   float64(res.Stats.Elapsed.Microseconds()) / 1000,
		},
	}
	for _, ax := range cfg.axes() {
		resp.Axes = append(resp.Axes, ax.Name)
	}
	for _, p := range res.Points {
		if p.Dominated && !includeAll {
			continue
		}
		resp.Points = append(resp.Points, pointJSON{
			Alpha:       p.Alpha,
			Makespan:    p.Makespan,
			DirtyEnergy: p.DirtyEnergy,
			Objectives:  p.Objectives,
			Sizes:       p.Plan.Sizes,
			Warm:        p.Warm,
			Pivots:      p.Pivots,
			Dominated:   p.Dominated,
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		// Headers are gone; nothing to do but note it for debugging.
		fmt.Fprintf(w, "\n// encode error: %v\n", err)
	}
}
