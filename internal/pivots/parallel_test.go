// Equivalence and determinism tests for the parallel corpus
// constructors and record decoders: at every worker count the results
// must match the sequential path exactly, and errors must name the
// same (lowest) failing record the sequential loop would.
package pivots_test

import (
	"runtime"
	"sort"
	"strings"
	"testing"

	"pareto/internal/datasets"
	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

var workerCounts = []int{1, 2, 3, 8, runtime.NumCPU()}

func testTrees(t testing.TB, scale float64) []pivots.Tree {
	t.Helper()
	trees, _, err := datasets.GenerateTrees(datasets.TreebankLike(scale))
	if err != nil {
		t.Fatal(err)
	}
	return trees
}

// sortedItems returns a sorted copy of an item set. Pivots() emits
// map-iteration order, which is nondeterministic even sequentially;
// only set equality is meaningful (and is all MinHash minima depend on).
func sortedItems(s []sketch.Item) []sketch.Item {
	c := append([]sketch.Item(nil), s...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func sameItemSets(t *testing.T, workers int, ref, got pivots.Corpus) {
	t.Helper()
	if ref.Len() != got.Len() {
		t.Fatalf("workers=%d: Len %d, want %d", workers, got.Len(), ref.Len())
	}
	for i := 0; i < ref.Len(); i++ {
		if got.Weight(i) != ref.Weight(i) {
			t.Fatalf("workers=%d: Weight(%d) = %d, want %d", workers, i, got.Weight(i), ref.Weight(i))
		}
		a, b := sortedItems(ref.ItemSet(i)), sortedItems(got.ItemSet(i))
		if len(a) != len(b) {
			t.Fatalf("workers=%d: record %d has %d items, want %d", workers, i, len(b), len(a))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("workers=%d: record %d item sets differ", workers, i)
			}
		}
	}
}

func TestNewTreeCorpusParallelEquivalence(t *testing.T) {
	trees := testTrees(t, 0.01)
	ref, err := pivots.NewTreeCorpusParallel(trees, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		c, err := pivots.NewTreeCorpusParallel(trees, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if c.TotalNodes() != ref.TotalNodes() {
			t.Fatalf("workers=%d: TotalNodes = %d, want %d", w, c.TotalNodes(), ref.TotalNodes())
		}
		sameItemSets(t, w, ref, c)
	}
}

func TestNewTreeCorpusParallelErrorIndex(t *testing.T) {
	trees := testTrees(t, 0.01)
	// Invalidate two records; every worker count must report the lower
	// index, exactly as the sequential loop does.
	trees[5].Parent = nil
	trees[20].Parent = nil
	for _, w := range workerCounts {
		_, err := pivots.NewTreeCorpusParallel(trees, w)
		if err == nil || !strings.Contains(err.Error(), "tree 5:") {
			t.Errorf("workers=%d: err = %v, want tree 5 reported", w, err)
		}
	}
}

func TestDecodeTreeRecordsParallelRoundtrip(t *testing.T) {
	trees := testTrees(t, 0.005)
	corpus, err := pivots.NewTreeCorpus(trees)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := 0; i < corpus.Len(); i++ {
		buf = corpus.AppendRecord(buf, i)
	}
	for _, w := range workerCounts {
		got, err := pivots.DecodeTreeRecordsParallel(buf, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(trees) {
			t.Fatalf("workers=%d: decoded %d trees, want %d", w, len(got), len(trees))
		}
		for i := range trees {
			if len(got[i].Parent) != len(trees[i].Parent) {
				t.Fatalf("workers=%d: tree %d has %d nodes, want %d", w, i, len(got[i].Parent), len(trees[i].Parent))
			}
			for k := range trees[i].Parent {
				if got[i].Parent[k] != trees[i].Parent[k] || got[i].Label[k] != trees[i].Label[k] {
					t.Fatalf("workers=%d: tree %d differs at node %d", w, i, k)
				}
			}
		}
	}
	// A truncated stream must fail identically at every worker count.
	seqTrees, seqErr := pivots.DecodeTreeRecords(buf[:len(buf)-3])
	if seqErr == nil || seqTrees != nil {
		t.Fatal("truncated stream must fail")
	}
	for _, w := range workerCounts {
		_, err := pivots.DecodeTreeRecordsParallel(buf[:len(buf)-3], w)
		if err == nil || err.Error() != seqErr.Error() {
			t.Errorf("workers=%d: err = %v, want %v", w, err, seqErr)
		}
	}
}

func TestNewTextCorpusParallelEquivalence(t *testing.T) {
	cfg := datasets.RCV1Like(0.0005)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pivots.NewTextCorpusParallel(docs, cfg.VocabSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		c, err := pivots.NewTextCorpusParallel(docs, cfg.VocabSize, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if c.TotalTerms() != ref.TotalTerms() {
			t.Fatalf("workers=%d: TotalTerms = %d, want %d", w, c.TotalTerms(), ref.TotalTerms())
		}
		sameItemSets(t, w, ref, c)
	}
	// Round-trip the wire form through the parallel decoder.
	var buf []byte
	for i := 0; i < ref.Len(); i++ {
		buf = ref.AppendRecord(buf, i)
	}
	seqDocs, seqVocab, err := pivots.DecodeTextRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		got, vocab, err := pivots.DecodeTextRecordsParallel(buf, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if vocab != seqVocab || len(got) != len(seqDocs) {
			t.Fatalf("workers=%d: vocab %d / %d docs, want %d / %d", w, vocab, len(got), seqVocab, len(seqDocs))
		}
		for i := range seqDocs {
			if len(got[i].Terms) != len(seqDocs[i].Terms) {
				t.Fatalf("workers=%d: doc %d has %d terms, want %d", w, i, len(got[i].Terms), len(seqDocs[i].Terms))
			}
			for k := range seqDocs[i].Terms {
				if got[i].Terms[k] != seqDocs[i].Terms[k] {
					t.Fatalf("workers=%d: doc %d differs at term %d", w, i, k)
				}
			}
		}
	}
}

func TestNewGraphCorpusParallelEquivalence(t *testing.T) {
	g, _, err := datasets.GenerateGraph(datasets.UKLike(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pivots.NewGraphCorpusParallel(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		c, err := pivots.NewGraphCorpusParallel(g, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if c.NumEdges() != ref.NumEdges() {
			t.Fatalf("workers=%d: NumEdges = %d, want %d", w, c.NumEdges(), ref.NumEdges())
		}
		sameItemSets(t, w, ref, c)
	}
}

func BenchmarkNewTreeCorpus(b *testing.B) {
	trees := testTrees(b, 0.2) // ~11k Treebank-shaped trees
	for _, tc := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pivots.NewTreeCorpusParallel(trees, tc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
