package pivots

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pareto/internal/sketch"
)

// randomParentArray builds a random valid parent array (parent[i] < i).
func randomParentArray(rng *rand.Rand, n int) []int32 {
	p := make([]int32, n)
	p[0] = -1
	for i := 1; i < n; i++ {
		p[i] = int32(rng.Intn(i))
	}
	return p
}

// edgeSet canonicalizes a parent array into a sorted list of
// undirected edges for structural comparison.
func edgeSet(parent []int32) [][2]int32 {
	var es [][2]int32
	for i := 1; i < len(parent); i++ {
		a, b := int32(i), parent[i]
		if a > b {
			a, b = b, a
		}
		es = append(es, [2]int32{a, b})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

func TestTreeValidate(t *testing.T) {
	good := Tree{Parent: []int32{-1, 0, 0, 1}, Label: []uint32{1, 2, 3, 4}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	bad := []Tree{
		{}, // empty
		{Parent: []int32{-1, 0}, Label: []uint32{1}},     // label mismatch
		{Parent: []int32{0, 0}, Label: []uint32{1, 2}},   // node 0 not root
		{Parent: []int32{-1, 1}, Label: []uint32{1, 2}},  // self/forward parent
		{Parent: []int32{-1, -1}, Label: []uint32{1, 2}}, // second root
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad tree %d accepted", i)
		}
	}
}

func TestPruferKnownSequence(t *testing.T) {
	// Star on 4 nodes centered at 0: every removal records 0.
	star := []int32{-1, 0, 0, 0}
	seq, err := PruferEncode(star)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, []int32{0, 0}) {
		t.Errorf("star Prüfer = %v, want [0 0]", seq)
	}
	// Path 0-1-2-3: leaves removed 0 (records 1), then 1 (records 2).
	path := []int32{-1, 0, 1, 2}
	seq, err = PruferEncode(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, []int32{1, 2}) {
		t.Errorf("path Prüfer = %v, want [1 2]", seq)
	}
}

func TestPruferSmallTrees(t *testing.T) {
	for _, p := range [][]int32{{-1}, {-1, 0}} {
		seq, err := PruferEncode(p)
		if err != nil {
			t.Fatalf("encode %v: %v", p, err)
		}
		if len(seq) != 0 {
			t.Errorf("tree of %d nodes: sequence %v, want empty", len(p), seq)
		}
		dec, err := PruferDecode(seq, len(p))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(edgeSet(dec), edgeSet(p)) {
			t.Errorf("roundtrip changed edges: %v vs %v", dec, p)
		}
	}
}

func TestPruferRoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(60)
		p := randomParentArray(rng, n)
		seq, err := PruferEncode(p)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if len(seq) != n-2 {
			t.Fatalf("sequence length %d, want %d", len(seq), n-2)
		}
		dec, err := PruferDecode(seq, n)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(edgeSet(dec), edgeSet(p)) {
			t.Fatalf("trial %d: edge sets differ\n in: %v\nout: %v", trial, p, dec)
		}
	}
}

func TestPruferDecodeErrors(t *testing.T) {
	if _, err := PruferDecode(nil, 0); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := PruferDecode([]int32{0}, 4); err == nil {
		t.Error("wrong sequence length must fail")
	}
	if _, err := PruferDecode([]int32{9, 0}, 4); err == nil {
		t.Error("out-of-range entry must fail")
	}
}

func TestPruferEncodeErrors(t *testing.T) {
	if _, err := PruferEncode(nil); err == nil {
		t.Error("empty tree must fail")
	}
	if _, err := PruferEncode([]int32{-1, 7, 0}); err == nil {
		t.Error("out-of-range parent must fail")
	}
}

func TestTreePivotsLCA(t *testing.T) {
	// Root a with children b, c: pivots must include the LCA triple
	// (a, b, c) and the edges (a,b), (a,c).
	tr := Tree{Parent: []int32{-1, 0, 0}, Label: []uint32{10, 20, 30}}
	got := tr.Pivots()
	want := map[sketch.Item]bool{
		sketch.Hash2(10, 20):     true,
		sketch.Hash2(10, 30):     true,
		sketch.Hash3(10, 20, 30): true,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pivots, want %d", len(got), len(want))
	}
	for _, it := range got {
		if !want[it] {
			t.Errorf("unexpected pivot %d", it)
		}
	}
}

func TestTreePivotsChain(t *testing.T) {
	// A chain has no branching, so only edge pivots appear.
	tr := Tree{Parent: []int32{-1, 0, 1}, Label: []uint32{1, 2, 3}}
	got := tr.Pivots()
	if len(got) != 2 {
		t.Fatalf("chain pivots = %d, want 2 edges", len(got))
	}
}

func TestTreePivotsSingleNode(t *testing.T) {
	tr := Tree{Parent: []int32{-1}, Label: []uint32{7}}
	if got := tr.Pivots(); len(got) != 1 {
		t.Errorf("single-node pivots = %d, want 1", len(got))
	}
	// Two single-node trees with different labels must differ.
	tr2 := Tree{Parent: []int32{-1}, Label: []uint32{8}}
	if tr.Pivots()[0] == tr2.Pivots()[0] {
		t.Error("single-node pivot must depend on label")
	}
}

func TestTreePivotsContentSensitive(t *testing.T) {
	a := Tree{Parent: []int32{-1, 0, 0, 1}, Label: []uint32{1, 2, 3, 4}}
	b := Tree{Parent: []int32{-1, 0, 0, 1}, Label: []uint32{1, 2, 3, 5}}
	ja := sketch.ExactJaccard(a.Pivots(), a.Pivots())
	jb := sketch.ExactJaccard(a.Pivots(), b.Pivots())
	if ja != 1 {
		t.Error("self Jaccard must be 1")
	}
	if jb >= 1 {
		t.Error("different labels must change the pivot set")
	}
}

func TestTreeCorpus(t *testing.T) {
	trees := []Tree{
		{Parent: []int32{-1, 0, 0}, Label: []uint32{1, 2, 3}},
		{Parent: []int32{-1, 0}, Label: []uint32{4, 5}},
	}
	c, err := NewTreeCorpus(trees)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != TreeData {
		t.Error("wrong kind")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Weight(0) != 3 || c.Weight(1) != 2 {
		t.Errorf("weights = %d,%d", c.Weight(0), c.Weight(1))
	}
	if c.TotalNodes() != 5 {
		t.Errorf("TotalNodes = %d", c.TotalNodes())
	}
	if len(c.ItemSet(0)) == 0 {
		t.Error("empty item set")
	}
	if _, err := NewTreeCorpus([]Tree{{}}); err == nil {
		t.Error("invalid tree must be rejected")
	}
}

func TestTreeRecordRoundtrip(t *testing.T) {
	trees := []Tree{
		{Parent: []int32{-1, 0, 1, 1}, Label: []uint32{9, 8, 7, 6}},
		{Parent: []int32{-1}, Label: []uint32{42}},
	}
	c, err := NewTreeCorpus(trees)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := range trees {
		buf = c.AppendRecord(buf, i)
	}
	for i := range trees {
		var tr Tree
		var err error
		tr, buf, err = DecodeTreeRecord(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(tr, trees[i]) {
			t.Errorf("record %d roundtrip mismatch: %+v vs %+v", i, tr, trees[i])
		}
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes", len(buf))
	}
}

func TestDecodeTreeRecordErrors(t *testing.T) {
	if _, _, err := DecodeTreeRecord([]byte{1, 2}); err == nil {
		t.Error("short header must fail")
	}
	if _, _, err := DecodeTreeRecord([]byte{100, 0, 0, 0, 1}); err == nil {
		t.Error("truncated payload must fail")
	}
	if _, _, err := DecodeTreeRecord([]byte{2, 0, 0, 0, 9, 9}); err == nil {
		t.Error("payload shorter than node header must fail")
	}
}

func TestGraphValidate(t *testing.T) {
	g := &Graph{Adj: [][]uint32{{1, 2}, {2}, {}}}
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	if err := (&Graph{Adj: [][]uint32{{5}}}).Validate(); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	if err := (&Graph{Adj: [][]uint32{{1, 1}, {}}}).Validate(); err == nil {
		t.Error("duplicate neighbor accepted")
	}
	if err := (&Graph{Adj: [][]uint32{{1, 0}, {}}}).Validate(); err == nil {
		t.Error("descending neighbors accepted")
	}
}

func TestGraphCorpus(t *testing.T) {
	g := &Graph{Adj: [][]uint32{{1, 2}, {0, 2}, {}}}
	c, err := NewGraphCorpus(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != GraphData || c.Len() != 3 {
		t.Error("kind/len wrong")
	}
	if c.Weight(0) != 3 || c.Weight(2) != 1 {
		t.Errorf("weights: %d, %d", c.Weight(0), c.Weight(2))
	}
	if g.NumEdges() != 4 || g.NumVertices() != 3 {
		t.Errorf("counts: %d edges, %d vertices", g.NumEdges(), g.NumVertices())
	}
	// Vertices 0 and 1 share neighbor 2: Jaccard = 1/3.
	j := sketch.ExactJaccard(c.ItemSet(0), c.ItemSet(1))
	if j != 1.0/3.0 {
		t.Errorf("neighbor Jaccard = %v, want 1/3", j)
	}
}

func TestGraphRecordRoundtrip(t *testing.T) {
	g := &Graph{Adj: [][]uint32{{1, 3}, {}, {0, 1, 3}, {2}}}
	c, err := NewGraphCorpus(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := 0; i < c.Len(); i++ {
		buf = c.AppendRecord(buf, i)
	}
	for i := 0; i < c.Len(); i++ {
		v, nbrs, rest, err := DecodeGraphRecord(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if int(v) != i {
			t.Errorf("vertex ID %d, want %d", v, i)
		}
		if len(nbrs) != len(g.Adj[i]) {
			t.Errorf("vertex %d: %d neighbors, want %d", i, len(nbrs), len(g.Adj[i]))
		}
		for k := range nbrs {
			if nbrs[k] != g.Adj[i][k] {
				t.Errorf("vertex %d neighbor %d mismatch", i, k)
			}
		}
		buf = rest
	}
}

func TestTextCorpus(t *testing.T) {
	docs := []Doc{{Terms: []uint32{0, 5, 9}}, {Terms: []uint32{5}}}
	c, err := NewTextCorpus(docs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != TextData || c.Len() != 2 || c.Weight(0) != 3 {
		t.Error("basic accessors wrong")
	}
	if _, err := NewTextCorpus(docs, 0); err == nil {
		t.Error("zero vocab accepted")
	}
	if _, err := NewTextCorpus([]Doc{{Terms: []uint32{11}}}, 10); err == nil {
		t.Error("out-of-vocab term accepted")
	}
	if _, err := NewTextCorpus([]Doc{{Terms: []uint32{3, 3}}}, 10); err == nil {
		t.Error("non-increasing terms accepted")
	}
}

func TestTextRecordRoundtrip(t *testing.T) {
	docs := []Doc{{Terms: []uint32{1, 2, 3}}, {Terms: nil}}
	c, err := NewTextCorpus(docs, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = c.AppendRecord(buf, 0)
	buf = c.AppendRecord(buf, 1)
	d0, rest, err := DecodeTextRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d0.Terms, []uint32{1, 2, 3}) {
		t.Errorf("doc0 = %v", d0.Terms)
	}
	d1, rest, err := DecodeTextRecord(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Terms) != 0 || len(rest) != 0 {
		t.Errorf("doc1 = %v, rest %d bytes", d1.Terms, len(rest))
	}
}

func TestKindString(t *testing.T) {
	if TreeData.String() != "tree" || GraphData.String() != "graph" || TextData.String() != "text" {
		t.Error("Kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still print")
	}
}

func TestDecodeTreeRecordsStream(t *testing.T) {
	trees := []Tree{
		{Parent: []int32{-1, 0}, Label: []uint32{1, 2}},
		{Parent: []int32{-1}, Label: []uint32{3}},
	}
	c, err := NewTreeCorpus(trees)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := range trees {
		buf = c.AppendRecord(buf, i)
	}
	got, err := DecodeTreeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !reflect.DeepEqual(got[0], trees[0]) {
		t.Errorf("decoded %v", got)
	}
	if _, err := DecodeTreeRecords([]byte{9, 9}); err == nil {
		t.Error("corrupt stream accepted")
	}
	if got, err := DecodeTreeRecords(nil); err != nil || len(got) != 0 {
		t.Error("empty stream must decode to nothing")
	}
}

func TestDecodeGraphRecordsStream(t *testing.T) {
	g := &Graph{Adj: [][]uint32{{1, 2}, {}, {0}}}
	c, err := NewGraphCorpus(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := 0; i < c.Len(); i++ {
		buf = c.AppendRecord(buf, i)
	}
	got, err := DecodeGraphRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 3 || got.NumEdges() != 3 {
		t.Errorf("decoded %d vertices %d edges", got.NumVertices(), got.NumEdges())
	}
	empty, err := DecodeGraphRecords(nil)
	if err != nil || empty.NumVertices() != 0 {
		t.Error("empty stream must decode to empty graph")
	}
	if _, err := DecodeGraphRecords([]byte{1, 0, 0, 0, 5}); err == nil {
		t.Error("corrupt stream accepted")
	}
}

func TestDecodeTextRecordsStream(t *testing.T) {
	docs := []Doc{{Terms: []uint32{0, 7}}, {Terms: []uint32{3}}}
	c, err := NewTextCorpus(docs, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := range docs {
		buf = c.AppendRecord(buf, i)
	}
	got, vocab, err := DecodeTextRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || vocab != 8 {
		t.Errorf("decoded %d docs, vocab %d", len(got), vocab)
	}
	if _, _, err := DecodeTextRecords([]byte{1, 2}); err == nil {
		t.Error("corrupt stream accepted")
	}
}
