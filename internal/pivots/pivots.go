// Package pivots defines the data model of the framework — trees,
// graphs and text documents — and the domain-specific conversion of
// each record into a *pivot set*: a flat set of items over a common
// universe (paper §III-C step 1).
//
// After pivot extraction every record, whatever its original type, is
// just a set of uint64 items, so sketching, stratification and
// partitioning run in a domain-independent way:
//
//   - Trees are encoded as Prüfer sequences for storage, and pivots
//     (a, p, q) — "a is the least common ancestor of p and q" — are
//     extracted from the tree structure over node labels.
//   - Graph vertices use their adjacency list (set of neighbors) as
//     the pivot set.
//   - Text documents use their set of word (term) identifiers.
//
// The package also provides compact binary codecs for each record type
// matching the storage layout of paper §IV: each record is a raw byte
// sequence whose first four bytes carry its length, so a whole
// partition can round-trip through the key-value store as one list.
package pivots

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"pareto/internal/parallel"
	"pareto/internal/sketch"
)

// Kind identifies the record domain of a corpus.
type Kind int

// Supported corpus kinds.
const (
	TreeData Kind = iota
	GraphData
	TextData
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case TreeData:
		return "tree"
	case GraphData:
		return "graph"
	case TextData:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Corpus is the domain-independent view of a dataset that the
// stratifier and partitioner operate on: every record exposes a pivot
// set and a size weight (its contribution to a partition's data count).
type Corpus interface {
	// Kind reports the record domain.
	Kind() Kind
	// Len returns the number of records.
	Len() int
	// ItemSet returns the pivot set of record i. Callers must not
	// modify the returned slice.
	ItemSet(i int) []sketch.Item
	// Weight returns the size proxy of record i (nodes for trees,
	// out-degree+1 for graph vertices, tokens for documents).
	Weight(i int) int
	// AppendRecord serializes record i in the length-prefixed wire
	// layout and returns the extended buffer.
	AppendRecord(dst []byte, i int) []byte
}

// ---------------------------------------------------------------------------
// Trees
// ---------------------------------------------------------------------------

// Tree is a rooted, labeled tree. Node 0 is the root. Parent[i] is the
// parent of node i (Parent[0] == -1). Label[i] is the content label of
// node i (e.g. an XML tag or grammar symbol identifier).
type Tree struct {
	Parent []int32
	Label  []uint32
}

// Validate checks structural invariants: node 0 is the root, every
// other node has a parent with a smaller index (nodes are stored in
// topological order), and labels align with parents.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	if n == 0 {
		return errors.New("pivots: empty tree")
	}
	if len(t.Label) != n {
		return fmt.Errorf("pivots: tree has %d parents but %d labels", n, len(t.Label))
	}
	if t.Parent[0] != -1 {
		return fmt.Errorf("pivots: node 0 must be root, got parent %d", t.Parent[0])
	}
	for i := 1; i < n; i++ {
		if t.Parent[i] < 0 || int(t.Parent[i]) >= i {
			return fmt.Errorf("pivots: node %d has invalid parent %d (need 0..%d)", i, t.Parent[i], i-1)
		}
	}
	return nil
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.Parent) }

// Children returns the children lists of every node.
func (t *Tree) Children() [][]int32 {
	ch := make([][]int32, len(t.Parent))
	for i := 1; i < len(t.Parent); i++ {
		p := t.Parent[i]
		ch[p] = append(ch[p], int32(i))
	}
	return ch
}

// Pivots extracts the LCA pivot set of the tree (paper §III-C step 1).
// For every internal node a and every consecutive pair of its children
// (c₁, c₂), node a is the least common ancestor of c₁ and c₂, yielding
// the pivot (label(a), label(c₁), label(c₂)). Parent–child edges are
// included as binary pivots so that path content is represented even in
// chains, where no branching LCA pivots exist. The result is a set of
// hashed items; duplicates are removed.
func (t *Tree) Pivots() []sketch.Item {
	ch := t.Children()
	set := make(map[sketch.Item]struct{}, len(t.Parent))
	for a, kids := range ch {
		la := uint64(t.Label[a])
		for i := range kids {
			lc := uint64(t.Label[kids[i]])
			set[sketch.Hash2(la, lc)] = struct{}{}
			if i+1 < len(kids) {
				set[sketch.Hash3(la, lc, uint64(t.Label[kids[i+1]]))] = struct{}{}
			}
		}
	}
	if len(set) == 0 {
		// Single-node tree: its only content is the root label.
		set[sketch.Hash2(uint64(t.Label[0]), ^uint64(0))] = struct{}{}
	}
	out := make([]sketch.Item, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	return out
}

// PruferEncode computes the Prüfer sequence of the tree viewed as an
// unrooted tree on nodes 0..n−1. The sequence has length n−2 and,
// together with n, uniquely identifies the tree structure (labels are
// carried separately). Trees with fewer than 3 nodes encode to an
// empty sequence.
func PruferEncode(parent []int32) ([]int32, error) {
	n := len(parent)
	if n == 0 {
		return nil, errors.New("pivots: cannot Prüfer-encode empty tree")
	}
	if n <= 2 {
		return []int32{}, nil
	}
	deg := make([]int32, n)
	for i := 1; i < n; i++ {
		if parent[i] < 0 || int(parent[i]) >= n {
			return nil, fmt.Errorf("pivots: node %d has out-of-range parent %d", i, parent[i])
		}
		deg[i]++
		deg[parent[i]]++
	}
	// The classical algorithm repeatedly removes the smallest-ID leaf
	// and records its remaining neighbor. A moving pointer plus leaf
	// cascade keeps the whole encode O(n).
	removed := make([]bool, n)
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		p := parent[i]
		adj[i] = append(adj[i], p)
		adj[p] = append(adj[p], int32(i))
	}
	seq := make([]int32, 0, n-2)
	ptr := int32(0)
	var leaf int32 = -1
	for len(seq) < n-2 {
		if leaf < 0 {
			for deg[ptr] != 1 || removed[ptr] {
				ptr++
			}
			leaf = ptr
		}
		// Record the single unremoved neighbor of the leaf.
		var nb int32 = -1
		for _, u := range adj[leaf] {
			if !removed[u] {
				nb = u
				break
			}
		}
		if nb < 0 {
			return nil, errors.New("pivots: malformed tree during Prüfer encode")
		}
		seq = append(seq, nb)
		removed[leaf] = true
		deg[nb]--
		if deg[nb] == 1 && nb < ptr {
			leaf = nb // cascade: the neighbor became the smallest leaf
		} else {
			leaf = -1
		}
	}
	return seq, nil
}

// PruferDecode reconstructs the unrooted tree edges from a Prüfer
// sequence over n nodes and re-roots it at node 0, returning a parent
// array in which children always have larger BFS order than parents is
// NOT guaranteed — the parent array is valid (Parent[0] = −1, acyclic)
// but node numbering is preserved from the sequence universe.
func PruferDecode(seq []int32, n int) ([]int32, error) {
	if n <= 0 {
		return nil, errors.New("pivots: PruferDecode needs n ≥ 1")
	}
	if n == 1 {
		return []int32{-1}, nil
	}
	if len(seq) != n-2 {
		return nil, fmt.Errorf("pivots: Prüfer sequence length %d, want %d", len(seq), n-2)
	}
	deg := make([]int32, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range seq {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("pivots: Prüfer entry %d out of range [0,%d)", v, n)
		}
		deg[v]++
	}
	adj := make([][]int32, n)
	addEdge := func(a, b int32) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	ptr := int32(0)
	leaf := int32(-1)
	for _, v := range seq {
		if leaf < 0 {
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
		addEdge(leaf, v)
		deg[leaf]--
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			leaf = -1
		}
	}
	// Two nodes of degree 1 remain; connect them.
	var last [2]int32
	k := 0
	for i := int32(0); i < int32(n); i++ {
		if deg[i] == 1 {
			last[k] = i
			k++
			if k == 2 {
				break
			}
		}
	}
	if k != 2 {
		return nil, errors.New("pivots: malformed Prüfer sequence")
	}
	addEdge(last[0], last[1])
	// Root at 0 via BFS.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if parent[u] == -2 {
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	for i := range parent {
		if parent[i] == -2 {
			return nil, errors.New("pivots: Prüfer decode produced a disconnected graph")
		}
	}
	return parent, nil
}

// TreeCorpus is a collection of trees with cached pivot sets.
type TreeCorpus struct {
	Trees []Tree

	items      [][]sketch.Item
	totalNodes int
}

// NewTreeCorpus validates every tree and precomputes pivot sets,
// fanning the work out across GOMAXPROCS workers.
func NewTreeCorpus(trees []Tree) (*TreeCorpus, error) {
	return NewTreeCorpusParallel(trees, 0)
}

// NewTreeCorpusParallel is NewTreeCorpus with an explicit worker bound
// (≤ 0 means GOMAXPROCS). Validation and pivot extraction are
// index-addressed per tree, so the corpus — and any error — is
// identical at every worker count.
func NewTreeCorpusParallel(trees []Tree, workers int) (*TreeCorpus, error) {
	c := &TreeCorpus{Trees: trees, items: make([][]sketch.Item, len(trees))}
	var total atomic.Int64
	_, err := parallel.ForErr(len(trees), workers, func(lo, hi int) error {
		nodes := 0
		for i := lo; i < hi; i++ {
			if err := trees[i].Validate(); err != nil {
				return fmt.Errorf("tree %d: %w", i, err)
			}
			c.items[i] = trees[i].Pivots()
			nodes += trees[i].NumNodes()
		}
		total.Add(int64(nodes))
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.totalNodes = int(total.Load())
	return c, nil
}

// Kind returns TreeData.
func (c *TreeCorpus) Kind() Kind { return TreeData }

// Len returns the number of trees.
func (c *TreeCorpus) Len() int { return len(c.Trees) }

// ItemSet returns the cached pivot set of tree i.
func (c *TreeCorpus) ItemSet(i int) []sketch.Item { return c.items[i] }

// Weight returns the node count of tree i.
func (c *TreeCorpus) Weight(i int) int { return c.Trees[i].NumNodes() }

// TotalNodes returns the node count across all trees, computed once at
// construction (the planner queries it per plan, not per record).
func (c *TreeCorpus) TotalNodes() int { return c.totalNodes }

// AppendRecord serializes tree i as:
//
//	uint32 payloadLen | uint32 n | n × int32 parent | n × uint32 label
//
// all little-endian, the layout of paper §IV (length header first).
func (c *TreeCorpus) AppendRecord(dst []byte, i int) []byte {
	t := &c.Trees[i]
	n := len(t.Parent)
	payload := 4 + 8*n
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	for _, p := range t.Parent {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p))
	}
	for _, l := range t.Label {
		dst = binary.LittleEndian.AppendUint32(dst, l)
	}
	return dst
}

// DecodeTreeRecord parses one length-prefixed tree record from buf,
// returning the tree and the remaining buffer.
func DecodeTreeRecord(buf []byte) (Tree, []byte, error) {
	payload, rest, err := splitRecord(buf)
	if err != nil {
		return Tree{}, nil, err
	}
	if len(payload) < 4 {
		return Tree{}, nil, errors.New("pivots: tree record too short")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+8*n {
		return Tree{}, nil, fmt.Errorf("pivots: tree record payload %d bytes, want %d", len(payload), 4+8*n)
	}
	t := Tree{Parent: make([]int32, n), Label: make([]uint32, n)}
	off := 4
	for i := 0; i < n; i++ {
		t.Parent[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	for i := 0; i < n; i++ {
		t.Label[i] = binary.LittleEndian.Uint32(payload[off:])
		off += 4
	}
	return t, rest, nil
}

// ---------------------------------------------------------------------------
// Graphs
// ---------------------------------------------------------------------------

// Graph is a directed graph in adjacency-list form. Adj[v] lists the
// out-neighbors of vertex v in strictly increasing order (required by
// the webgraph compressor; generators guarantee it and Validate checks).
// Each vertex is one record of the corpus, as in the paper's webgraph
// workloads where vertices (and their adjacency payload) are the data
// items being placed.
type Graph struct {
	Adj [][]uint32
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Adj) }

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// Validate checks neighbor ordering and range.
func (g *Graph) Validate() error {
	n := uint32(len(g.Adj))
	for v, nbrs := range g.Adj {
		for i, u := range nbrs {
			if u >= n {
				return fmt.Errorf("pivots: vertex %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("pivots: vertex %d adjacency not strictly increasing at %d", v, i)
			}
		}
	}
	return nil
}

// GraphCorpus exposes a Graph as a corpus of per-vertex records.
type GraphCorpus struct {
	G *Graph

	items    [][]sketch.Item
	numEdges int
}

// NewGraphCorpus validates the graph and caches per-vertex pivot sets
// (the neighbor sets themselves, per paper §III-C step 1), fanning the
// work out across GOMAXPROCS workers.
func NewGraphCorpus(g *Graph) (*GraphCorpus, error) {
	return NewGraphCorpusParallel(g, 0)
}

// NewGraphCorpusParallel is NewGraphCorpus with an explicit worker
// bound (≤ 0 means GOMAXPROCS). Validation and item-set construction
// run in one per-vertex pass, index-addressed, so the corpus — and any
// error — is identical at every worker count.
func NewGraphCorpusParallel(g *Graph, workers int) (*GraphCorpus, error) {
	n := uint32(len(g.Adj))
	c := &GraphCorpus{G: g, items: make([][]sketch.Item, len(g.Adj))}
	var edges atomic.Int64
	_, err := parallel.ForErr(len(g.Adj), workers, func(lo, hi int) error {
		cnt := 0
		for v := lo; v < hi; v++ {
			nbrs := g.Adj[v]
			set := make([]sketch.Item, len(nbrs))
			for i, u := range nbrs {
				if u >= n {
					return fmt.Errorf("pivots: vertex %d has out-of-range neighbor %d", v, u)
				}
				if i > 0 && nbrs[i-1] >= u {
					return fmt.Errorf("pivots: vertex %d adjacency not strictly increasing at %d", v, i)
				}
				set[i] = sketch.Item(u)
			}
			c.items[v] = set
			cnt += len(nbrs)
		}
		edges.Add(int64(cnt))
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.numEdges = int(edges.Load())
	return c, nil
}

// NumEdges returns the total directed edge count, computed once at
// construction (Graph.NumEdges rescans the adjacency table; the corpus
// caches the sum the same way TreeCorpus caches TotalNodes).
func (c *GraphCorpus) NumEdges() int { return c.numEdges }

// Kind returns GraphData.
func (c *GraphCorpus) Kind() Kind { return GraphData }

// Len returns the vertex count.
func (c *GraphCorpus) Len() int { return len(c.G.Adj) }

// ItemSet returns the neighbor set of vertex i.
func (c *GraphCorpus) ItemSet(i int) []sketch.Item { return c.items[i] }

// Weight returns out-degree + 1 (the vertex itself plus its edges —
// the bytes that must be stored and compressed for this record).
func (c *GraphCorpus) Weight(i int) int { return len(c.G.Adj[i]) + 1 }

// AppendRecord serializes vertex i as:
//
//	uint32 payloadLen | uint32 vertexID | uint32 deg | deg × uint32 neighbor
func (c *GraphCorpus) AppendRecord(dst []byte, i int) []byte {
	nbrs := c.G.Adj[i]
	payload := 8 + 4*len(nbrs)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(i))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(nbrs)))
	for _, u := range nbrs {
		dst = binary.LittleEndian.AppendUint32(dst, u)
	}
	return dst
}

// DecodeGraphRecord parses one vertex record, returning the vertex ID,
// its adjacency list and the remaining buffer.
func DecodeGraphRecord(buf []byte) (uint32, []uint32, []byte, error) {
	payload, rest, err := splitRecord(buf)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(payload) < 8 {
		return 0, nil, nil, errors.New("pivots: graph record too short")
	}
	v := binary.LittleEndian.Uint32(payload)
	deg := int(binary.LittleEndian.Uint32(payload[4:]))
	if len(payload) != 8+4*deg {
		return 0, nil, nil, fmt.Errorf("pivots: graph record payload %d bytes, want %d", len(payload), 8+4*deg)
	}
	nbrs := make([]uint32, deg)
	for i := 0; i < deg; i++ {
		nbrs[i] = binary.LittleEndian.Uint32(payload[8+4*i:])
	}
	return v, nbrs, rest, nil
}

// ---------------------------------------------------------------------------
// Text
// ---------------------------------------------------------------------------

// Doc is a text document represented as a bag of term IDs (a row of a
// document–term corpus such as RCV1). Terms holds the distinct term
// IDs present in the document, in strictly increasing order.
type Doc struct {
	Terms []uint32
}

// TextCorpus is a collection of documents over a shared vocabulary.
type TextCorpus struct {
	Docs      []Doc
	VocabSize int

	items      [][]sketch.Item
	totalTerms int
}

// NewTextCorpus validates term ordering/range and caches item sets,
// fanning the work out across GOMAXPROCS workers.
func NewTextCorpus(docs []Doc, vocabSize int) (*TextCorpus, error) {
	return NewTextCorpusParallel(docs, vocabSize, 0)
}

// NewTextCorpusParallel is NewTextCorpus with an explicit worker bound
// (≤ 0 means GOMAXPROCS). Validation and term extraction are
// index-addressed per document, so the corpus — and any error — is
// identical at every worker count.
func NewTextCorpusParallel(docs []Doc, vocabSize, workers int) (*TextCorpus, error) {
	if vocabSize <= 0 {
		return nil, errors.New("pivots: vocabSize must be positive")
	}
	c := &TextCorpus{Docs: docs, VocabSize: vocabSize, items: make([][]sketch.Item, len(docs))}
	var terms atomic.Int64
	_, err := parallel.ForErr(len(docs), workers, func(lo, hi int) error {
		cnt := 0
		for d := lo; d < hi; d++ {
			doc := docs[d]
			set := make([]sketch.Item, len(doc.Terms))
			for i, t := range doc.Terms {
				if int(t) >= vocabSize {
					return fmt.Errorf("pivots: doc %d term %d exceeds vocab %d", d, t, vocabSize)
				}
				if i > 0 && doc.Terms[i-1] >= t {
					return fmt.Errorf("pivots: doc %d terms not strictly increasing at %d", d, i)
				}
				set[i] = sketch.Item(t)
			}
			c.items[d] = set
			cnt += len(doc.Terms)
		}
		terms.Add(int64(cnt))
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.totalTerms = int(terms.Load())
	return c, nil
}

// TotalTerms returns the summed distinct-term count across documents,
// computed once at construction.
func (c *TextCorpus) TotalTerms() int { return c.totalTerms }

// Kind returns TextData.
func (c *TextCorpus) Kind() Kind { return TextData }

// Len returns the number of documents.
func (c *TextCorpus) Len() int { return len(c.Docs) }

// ItemSet returns the term set of document i.
func (c *TextCorpus) ItemSet(i int) []sketch.Item { return c.items[i] }

// Weight returns the distinct-term count of document i.
func (c *TextCorpus) Weight(i int) int { return len(c.Docs[i].Terms) }

// AppendRecord serializes document i as:
//
//	uint32 payloadLen | uint32 nTerms | n × uint32 term
func (c *TextCorpus) AppendRecord(dst []byte, i int) []byte {
	terms := c.Docs[i].Terms
	payload := 4 + 4*len(terms)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(terms)))
	for _, t := range terms {
		dst = binary.LittleEndian.AppendUint32(dst, t)
	}
	return dst
}

// DecodeTextRecord parses one document record, returning the document
// and the remaining buffer.
func DecodeTextRecord(buf []byte) (Doc, []byte, error) {
	payload, rest, err := splitRecord(buf)
	if err != nil {
		return Doc{}, nil, err
	}
	if len(payload) < 4 {
		return Doc{}, nil, errors.New("pivots: text record too short")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+4*n {
		return Doc{}, nil, fmt.Errorf("pivots: text record payload %d bytes, want %d", len(payload), 4+4*n)
	}
	terms := make([]uint32, n)
	for i := 0; i < n; i++ {
		terms[i] = binary.LittleEndian.Uint32(payload[4+4*i:])
	}
	return Doc{Terms: terms}, rest, nil
}

// DecodeTreeRecords parses a whole stream of tree records (the datagen
// / DiskStore file layout) into a corpus-ready slice. A sequential
// length-header scan first splits the buffer into per-record spans;
// the payload decode then fans out across GOMAXPROCS workers.
func DecodeTreeRecords(buf []byte) ([]Tree, error) {
	return DecodeTreeRecordsParallel(buf, 0)
}

// DecodeTreeRecordsParallel is DecodeTreeRecords with an explicit
// worker bound (≤ 0 means GOMAXPROCS). Records decode into
// index-addressed slots, so the result is identical at every worker
// count.
func DecodeTreeRecordsParallel(buf []byte, workers int) ([]Tree, error) {
	offs, err := scanRecordOffsets(buf)
	if err != nil {
		return nil, err
	}
	if len(offs) == 0 {
		return nil, nil
	}
	trees := make([]Tree, len(offs))
	if _, err := parallel.ForErr(len(offs), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			t, _, err := DecodeTreeRecord(recordSpan(buf, offs, i))
			if err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			trees[i] = t
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return trees, nil
}

// DecodeGraphRecords parses a stream of vertex records into a Graph.
// Vertex IDs index the adjacency table; the table is sized to the
// largest ID seen (endpoints included), so partial partitions decode.
func DecodeGraphRecords(buf []byte) (*Graph, error) {
	type rec struct {
		v    uint32
		nbrs []uint32
	}
	var recs []rec
	maxV := uint32(0)
	for len(buf) > 0 {
		v, nbrs, rest, err := DecodeGraphRecord(buf)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", len(recs), err)
		}
		recs = append(recs, rec{v, nbrs})
		if v > maxV {
			maxV = v
		}
		for _, u := range nbrs {
			if u > maxV {
				maxV = u
			}
		}
		buf = rest
	}
	if len(recs) == 0 {
		return &Graph{}, nil
	}
	adj := make([][]uint32, int(maxV)+1)
	for _, r := range recs {
		adj[r.v] = r.nbrs
	}
	return &Graph{Adj: adj}, nil
}

// DecodeTextRecords parses a stream of document records, returning the
// documents and the implied vocabulary size (max term + 1). A
// sequential length-header scan first splits the buffer into
// per-record spans; the payload decode then fans out across GOMAXPROCS
// workers.
func DecodeTextRecords(buf []byte) ([]Doc, int, error) {
	return DecodeTextRecordsParallel(buf, 0)
}

// DecodeTextRecordsParallel is DecodeTextRecords with an explicit
// worker bound (≤ 0 means GOMAXPROCS). Records decode into
// index-addressed slots and the vocabulary bound is a commutative
// maximum, so the result is identical at every worker count.
func DecodeTextRecordsParallel(buf []byte, workers int) ([]Doc, int, error) {
	offs, err := scanRecordOffsets(buf)
	if err != nil {
		return nil, 0, err
	}
	if len(offs) == 0 {
		return nil, 1, nil
	}
	docs := make([]Doc, len(offs))
	var maxTerm atomic.Uint32
	if _, err := parallel.ForErr(len(offs), workers, func(lo, hi int) error {
		m := uint32(0)
		for i := lo; i < hi; i++ {
			d, _, err := DecodeTextRecord(recordSpan(buf, offs, i))
			if err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			docs[i] = d
			for _, t := range d.Terms {
				if t > m {
					m = t
				}
			}
		}
		for {
			cur := maxTerm.Load()
			if m <= cur || maxTerm.CompareAndSwap(cur, m) {
				return nil
			}
		}
	}); err != nil {
		return nil, 0, err
	}
	return docs, int(maxTerm.Load()) + 1, nil
}

// splitRecord strips one uint32-length-prefixed record from buf.
func splitRecord(buf []byte) (payload, rest []byte, err error) {
	if len(buf) < 4 {
		return nil, nil, errors.New("pivots: record buffer shorter than length header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) < 4+n {
		return nil, nil, fmt.Errorf("pivots: record claims %d payload bytes, only %d available", n, len(buf)-4)
	}
	return buf[4 : 4+n], buf[4+n:], nil
}

// scanRecordOffsets walks the length headers of a record stream
// sequentially — the cheap O(records) pass — and returns the byte
// offset where each record starts, so the expensive payload decode can
// fan out across workers on independent spans. Header-level corruption
// is reported with the same record index the sequential decoder would
// have used.
func scanRecordOffsets(buf []byte) ([]int, error) {
	var offs []int
	off := 0
	for off < len(buf) {
		rest := buf[off:]
		if len(rest) < 4 {
			return nil, fmt.Errorf("record %d: %w", len(offs),
				errors.New("pivots: record buffer shorter than length header"))
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if len(rest) < 4+n {
			return nil, fmt.Errorf("record %d: pivots: record claims %d payload bytes, only %d available",
				len(offs), n, len(rest)-4)
		}
		offs = append(offs, off)
		off += 4 + n
	}
	return offs, nil
}

// recordSpan returns the bytes of record i: from its offset to the
// next record's offset (or the end of the stream).
func recordSpan(buf []byte, offs []int, i int) []byte {
	end := len(buf)
	if i+1 < len(offs) {
		end = offs[i+1]
	}
	return buf[offs[i]:end]
}
