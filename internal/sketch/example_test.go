package sketch_test

import (
	"fmt"

	"pareto/internal/sketch"
)

// Estimate the Jaccard similarity of two sets from their sketches.
func ExampleHasher_Sketch() {
	h, err := sketch.NewHasher(256, 42)
	if err != nil {
		panic(err)
	}
	a := []sketch.Item{1, 2, 3, 4, 5, 6, 7, 8}
	b := []sketch.Item{1, 2, 3, 4, 9, 10, 11, 12} // Jaccard = 4/12 = 1/3
	est := h.Sketch(a).Agreement(h.Sketch(b))
	exact := sketch.ExactJaccard(a, b)
	fmt.Printf("exact=%.3f estimate within 0.1: %v\n", exact, est > exact-0.1 && est < exact+0.1)
	// Output:
	// exact=0.333 estimate within 0.1: true
}
