// Package sketch implements min-wise independent permutation sketches
// (MinHash) over item sets, following Broder et al. (STOC 1998) with the
// cheap "min-wise independent linear permutations" family of Bohman,
// Cooper and Frieze (Electron. J. Combin. 2000) that the paper adopts
// for efficiency (paper §III-C step 2).
//
// A sketch is a fixed-length vector of k minima, one per random linear
// permutation h(x) = (a·x + b) mod p over a large prime field. The
// probability that two sketches agree in one coordinate approximates
// the Jaccard similarity of the underlying sets, so Hamming agreement
// between sketches estimates Jaccard similarity without touching the
// (potentially huge) original sets.
package sketch

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/bits"
	"math/rand"

	"pareto/internal/parallel"
)

// MersennePrime61 is the field modulus 2^61−1 used by the linear
// permutation family. It is large enough that collisions between
// distinct 61-bit items are impossible and reduction is branch-cheap.
const MersennePrime61 = (1 << 61) - 1

// Item is a universe element. Raw data (words, pivots, neighbor IDs)
// is hashed into Items before sketching; see HashString and HashBytes.
type Item = uint64

// LinearPermutation is one member of the min-wise independent linear
// family: π(x) = (A·x + B) mod 2^61−1 with A ∈ [1, p−1], B ∈ [0, p−1].
type LinearPermutation struct {
	A uint64
	B uint64
}

// Apply evaluates the permutation at x. x is first folded into the
// field so that arbitrary 64-bit items are accepted.
func (lp LinearPermutation) Apply(x Item) uint64 {
	return applyPerm(lp.A, lp.B, reduce(x))
}

// applyPerm returns (a·xr + b) mod 2^61−1 for xr already reduced and
// b < p. It merges the product fold and the addition into a single
// reduction chain — one conditional subtract instead of mulMod's and
// addMod's separate ones — and is canonical-value-identical to
// addMod(mulMod(a, xr), b).
func applyPerm(a, b, xr uint64) uint64 {
	hi, lo := bits.Mul64(a, xr)
	// Each masked term is < 2^61 and the shifts contribute < 2^7, so
	// t < 3·2^61 + b-fold slack fits a uint64 without overflow.
	t := (lo & MersennePrime61) + (lo >> 61) + (hi<<3)&MersennePrime61 + (hi >> 58) + b
	r := (t & MersennePrime61) + (t >> 61)
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	return r
}

// reduce folds an arbitrary 64-bit value into [0, 2^61−1).
func reduce(x uint64) uint64 {
	x = (x >> 61) + (x & MersennePrime61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// mulMod returns a·b mod 2^61−1 using a 128-bit intermediate product.
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a·b = hi·2^64 + lo. With p = 2^61−1, 2^61 ≡ 1, so
	// 2^64 ≡ 8 (mod p) and the product folds in two steps.
	r := (lo & MersennePrime61) + (lo >> 61) + (hi<<3)&MersennePrime61 + (hi >> 58)
	r = (r & MersennePrime61) + (r >> 61)
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	return r
}

// addMod returns a+b mod 2^61−1 for a, b already < 2^61−1.
func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// Sketch is the k-dimensional signature of one item set. Sketches are
// the categorical feature vectors consumed by the compositeKModes
// stratifier: coordinate i is the minimum of permutation i over the set.
type Sketch []uint64

// Agreement returns the fraction of coordinates at which the two
// sketches are equal — the MinHash estimate of Jaccard similarity.
// It panics if the sketches have different lengths, which indicates
// they came from different Hashers and comparing them is a bug.
func (s Sketch) Agreement(t Sketch) float64 {
	if len(s) != len(t) {
		panic(fmt.Sprintf("sketch: comparing sketches of different widths %d and %d", len(s), len(t)))
	}
	if len(s) == 0 {
		return 0
	}
	eq := 0
	for i := range s {
		if s[i] == t[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(s))
}

// Clone returns a copy of the sketch.
func (s Sketch) Clone() Sketch {
	c := make(Sketch, len(s))
	copy(c, s)
	return c
}

// EmptySentinel is the coordinate value produced when sketching an
// empty set: no item exists to take a minimum over. It is outside the
// field [0, 2^61−1) so it can never collide with a real minimum.
const EmptySentinel = ^uint64(0)

// Hasher holds k independent linear permutations and produces sketches.
// A Hasher is immutable after construction and safe for concurrent use.
type Hasher struct {
	perms []LinearPermutation
}

// ErrNoPermutations is returned by NewHasher when k < 1.
var ErrNoPermutations = errors.New("sketch: hasher needs at least one permutation")

// NewHasher creates a Hasher with k permutations drawn deterministically
// from seed. Equal (k, seed) pairs always yield identical Hashers, so
// sketches computed on different cluster nodes are comparable.
func NewHasher(k int, seed int64) (*Hasher, error) {
	if k < 1 {
		return nil, ErrNoPermutations
	}
	rng := rand.New(rand.NewSource(seed))
	perms := make([]LinearPermutation, k)
	for i := range perms {
		perms[i] = LinearPermutation{
			A: 1 + uint64(rng.Int63n(MersennePrime61-1)),
			B: uint64(rng.Int63n(MersennePrime61)),
		}
	}
	return &Hasher{perms: perms}, nil
}

// K returns the sketch width (number of permutations).
func (h *Hasher) K() int { return len(h.perms) }

// Sketch computes the k-minima signature of the given item set.
// The set need not be sorted or deduplicated; duplicates cannot change
// a minimum. An empty set yields a sketch of EmptySentinel coordinates.
func (h *Hasher) Sketch(set []Item) Sketch {
	out := make(Sketch, len(h.perms))
	h.SketchInto(set, out)
	return out
}

// SketchInto computes the signature into dst, which must have length
// K(). It exists so bulk sketching can avoid per-set allocations.
//
// The loop is blocked for the hot path (bulk sketching in the
// distributed ship): items are pre-reduced into a stack buffer once
// per block, then each permutation streams the block with its minimum
// held in a register instead of re-reading dst per item. Coordinate
// values are identical to applying the permutations item by item.
func (h *Hasher) SketchInto(set []Item, dst Sketch) {
	perms := h.perms
	if len(dst) != len(perms) {
		panic(fmt.Sprintf("sketch: SketchInto dst width %d, want %d", len(dst), len(perms)))
	}
	dst = dst[:len(perms)]
	for i := range dst {
		dst[i] = EmptySentinel
	}
	var xbuf [64]uint64
	for base := 0; base < len(set); base += len(xbuf) {
		block := set[base:]
		if len(block) > len(xbuf) {
			block = block[:len(xbuf)]
		}
		for j, x := range block {
			xbuf[j] = reduce(x)
		}
		xr := xbuf[:len(block)]
		for i := range perms {
			a, b, m := perms[i].A, perms[i].B, dst[i]
			for _, x := range xr {
				if v := applyPerm(a, b, x); v < m {
					m = v
				}
			}
			dst[i] = m
		}
	}
}

// SketchAll computes the sketches of the n item sets set(0) … set(n−1).
// All n sketches share one flat backing array (a single allocation
// instead of n small ones), and items are processed in index order per
// worker so the arena is filled in cache-friendly sequential runs.
// Coordinate values are identical to calling Sketch on each set.
//
// The fan-out rides the planner's shared parallel pool: chunked with
// dynamic scheduling (skewed records rebalance) and index-addressed
// outputs, so the sketches are bit-identical at any worker count.
//
// workers ≤ 0 means GOMAXPROCS. set must be safe for concurrent calls
// with distinct arguments (read-only corpora qualify).
func (h *Hasher) SketchAll(n int, set func(i int) []Item, workers int) []Sketch {
	k := len(h.perms)
	out := make([]Sketch, n)
	flat := make([]uint64, n*k)
	for i := range out {
		// Full slice expressions keep an append on one sketch from
		// bleeding into its neighbor's coordinates.
		out[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	parallel.For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h.SketchInto(set(i), out[i])
		}
	})
	return out
}

// ExactJaccard computes |a∩b| / |a∪b| exactly. Inputs need not be
// sorted; duplicates are ignored. Two empty sets have similarity 0.
func ExactJaccard(a, b []Item) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	seen := make(map[Item]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	union := len(seen)
	inter := 0
	counted := make(map[Item]bool, len(b))
	for _, x := range b {
		if counted[x] {
			continue
		}
		counted[x] = true
		if seen[x] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// HashString maps a string item (a word, a serialized pivot) into the
// sketch universe with FNV-1a.
func HashString(s string) Item {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// HashBytes maps a byte-slice item into the sketch universe with FNV-1a.
func HashBytes(b []byte) Item {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}

// Hash2 maps an ordered pair of 64-bit values (e.g. a graph edge or a
// two-field pivot) into the sketch universe. It mixes with the FNV-1a
// prime so that (a,b) and (b,a) map to different items.
func Hash2(a, b uint64) Item {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (a >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < 8; i++ {
		h ^= (b >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}

// Hash3 maps an ordered triple (e.g. an LCA pivot (a,p,q)) into the
// sketch universe.
func Hash3(a, b, c uint64) Item {
	return Hash2(Hash2(a, b), c)
}
