package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceInField(t *testing.T) {
	cases := []uint64{0, 1, MersennePrime61 - 1, MersennePrime61, MersennePrime61 + 1, ^uint64(0), 1 << 62}
	for _, x := range cases {
		if r := reduce(x); r >= MersennePrime61 {
			t.Errorf("reduce(%d) = %d, not in field", x, r)
		}
	}
}

func TestReduceCongruent(t *testing.T) {
	// reduce must preserve value mod p.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := rng.Uint64()
		want := x % MersennePrime61
		if got := reduce(x); got != want {
			t.Fatalf("reduce(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestMulModAgainstBigIntStyle(t *testing.T) {
	// Verify mulMod against the definition using 128-bit decomposition
	// through explicit small cases and random cases computed via
	// math/big-free double-and-add.
	mulRef := func(a, b uint64) uint64 {
		// double-and-add in the field; O(64) but exact.
		a %= MersennePrime61
		b %= MersennePrime61
		var acc uint64
		for b > 0 {
			if b&1 == 1 {
				acc = addMod(acc, a)
			}
			a = addMod(a, a)
			b >>= 1
		}
		return acc
	}
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {MersennePrime61 - 1, MersennePrime61 - 1},
		{MersennePrime61 - 1, 2}, {1 << 60, 1 << 60},
	}
	for _, c := range cases {
		if got, want := mulMod(c[0], c[1]), mulRef(c[0], c[1]); got != want {
			t.Errorf("mulMod(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a := uint64(rng.Int63n(MersennePrime61))
		b := uint64(rng.Int63n(MersennePrime61))
		if got, want := mulMod(a, b), mulRef(a, b); got != want {
			t.Fatalf("mulMod(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestNewHasherValidation(t *testing.T) {
	if _, err := NewHasher(0, 1); err == nil {
		t.Error("NewHasher(0) should fail")
	}
	if _, err := NewHasher(-3, 1); err == nil {
		t.Error("NewHasher(-3) should fail")
	}
	h, err := NewHasher(16, 1)
	if err != nil {
		t.Fatalf("NewHasher(16): %v", err)
	}
	if h.K() != 16 {
		t.Errorf("K() = %d, want 16", h.K())
	}
}

func TestHasherDeterministic(t *testing.T) {
	h1, _ := NewHasher(32, 42)
	h2, _ := NewHasher(32, 42)
	set := []Item{3, 1, 4, 1, 5, 9, 2, 6}
	s1, s2 := h1.Sketch(set), h2.Sketch(set)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed produced different sketches at %d: %d vs %d", i, s1[i], s2[i])
		}
	}
	h3, _ := NewHasher(32, 43)
	s3 := h3.Sketch(set)
	same := 0
	for i := range s1 {
		if s1[i] == s3[i] {
			same++
		}
	}
	if same == len(s1) {
		t.Error("different seeds produced identical sketches; permutations not seed-dependent")
	}
}

func TestSketchOrderAndDuplicateInvariance(t *testing.T) {
	h, _ := NewHasher(24, 7)
	a := []Item{10, 20, 30, 40}
	b := []Item{40, 30, 20, 10, 10, 30}
	sa, sb := h.Sketch(a), h.Sketch(b)
	if sa.Agreement(sb) != 1.0 {
		t.Error("sketch must be invariant to order and duplicates")
	}
}

func TestSketchEmptySet(t *testing.T) {
	h, _ := NewHasher(8, 7)
	s := h.Sketch(nil)
	for i, v := range s {
		if v != EmptySentinel {
			t.Errorf("empty-set sketch coordinate %d = %d, want sentinel", i, v)
		}
	}
}

func TestIdenticalSetsFullAgreement(t *testing.T) {
	h, _ := NewHasher(64, 3)
	set := []Item{1, 2, 3, 4, 5}
	if got := h.Sketch(set).Agreement(h.Sketch(set)); got != 1.0 {
		t.Errorf("identical sets agreement = %v, want 1", got)
	}
}

func TestDisjointSetsLowAgreement(t *testing.T) {
	h, _ := NewHasher(128, 3)
	a := make([]Item, 100)
	b := make([]Item, 100)
	for i := range a {
		a[i] = Item(i)
		b[i] = Item(i + 1000)
	}
	if got := h.Sketch(a).Agreement(h.Sketch(b)); got > 0.1 {
		t.Errorf("disjoint sets agreement = %v, want near 0", got)
	}
}

func TestAgreementEstimatesJaccard(t *testing.T) {
	// The core MinHash property: E[agreement] = Jaccard. With k=512
	// the standard error is ~sqrt(J(1-J)/512) < 0.023, so a 0.12
	// tolerance gives a >5-sigma margin.
	h, _ := NewHasher(512, 99)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		shared := rng.Intn(200) + 1
		onlyA := rng.Intn(200)
		onlyB := rng.Intn(200)
		var a, b []Item
		for i := 0; i < shared; i++ {
			v := rng.Uint64()
			a = append(a, v)
			b = append(b, v)
		}
		for i := 0; i < onlyA; i++ {
			a = append(a, rng.Uint64()|1<<63)
		}
		for i := 0; i < onlyB; i++ {
			b = append(b, rng.Uint64()&^(uint64(1)<<63)|1<<62)
		}
		exact := ExactJaccard(a, b)
		est := h.Sketch(a).Agreement(h.Sketch(b))
		if math.Abs(exact-est) > 0.12 {
			t.Errorf("trial %d: exact Jaccard %.3f, estimate %.3f", trial, exact, est)
		}
	}
}

func TestExactJaccard(t *testing.T) {
	cases := []struct {
		a, b []Item
		want float64
	}{
		{nil, nil, 0},
		{[]Item{1}, nil, 0},
		{nil, []Item{1}, 0},
		{[]Item{1, 2}, []Item{1, 2}, 1},
		{[]Item{1, 2, 3, 4}, []Item{3, 4, 5, 6}, 2.0 / 6.0},
		{[]Item{1, 1, 2, 2}, []Item{2, 2, 3}, 1.0 / 3.0},
		{[]Item{1}, []Item{2}, 0},
	}
	for i, c := range cases {
		if got := ExactJaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: ExactJaccard = %v, want %v", i, got, c.want)
		}
	}
}

func TestExactJaccardSymmetric(t *testing.T) {
	f := func(a, b []uint64) bool {
		return math.Abs(ExactJaccard(a, b)-ExactJaccard(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExactJaccardBounds(t *testing.T) {
	f := func(a, b []uint64) bool {
		j := ExactJaccard(a, b)
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermutationIsInjectiveOnSamples(t *testing.T) {
	// A linear map with A≠0 over a prime field is a bijection; verify
	// no collisions over a random sample.
	lp := LinearPermutation{A: 123456789, B: 987654321}
	seen := make(map[uint64]uint64)
	for x := uint64(0); x < 5000; x++ {
		v := lp.Apply(x)
		if prev, ok := seen[v]; ok {
			t.Fatalf("collision: Apply(%d) == Apply(%d) == %d", x, prev, v)
		}
		seen[v] = x
	}
}

func TestSketchIntoMatchesSketch(t *testing.T) {
	h, _ := NewHasher(16, 5)
	set := []Item{9, 8, 7, 6}
	dst := make(Sketch, 16)
	h.SketchInto(set, dst)
	ref := h.Sketch(set)
	for i := range dst {
		if dst[i] != ref[i] {
			t.Fatalf("SketchInto differs from Sketch at %d", i)
		}
	}
}

// TestSketchAllMatchesSketch is the golden-equality test for the bulk
// arena path: every coordinate of every SketchAll output must equal the
// per-set Sketch output, for any worker count, including empty sets.
func TestSketchAllMatchesSketch(t *testing.T) {
	h, _ := NewHasher(24, 9)
	rng := rand.New(rand.NewSource(4))
	sets := make([][]Item, 157)
	for i := range sets {
		set := make([]Item, rng.Intn(30))
		for j := range set {
			set[j] = rng.Uint64()
		}
		sets[i] = set
	}
	sets[13] = nil // empty sets exercise the sentinel path
	for _, workers := range []int{0, 1, 3, 16, 200} {
		got := h.SketchAll(len(sets), func(i int) []Item { return sets[i] }, workers)
		if len(got) != len(sets) {
			t.Fatalf("workers=%d: %d sketches for %d sets", workers, len(got), len(sets))
		}
		for i, set := range sets {
			want := h.Sketch(set)
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("workers=%d: SketchAll[%d][%d] = %d, Sketch = %d",
						workers, i, j, got[i][j], want[j])
				}
			}
		}
	}
}

func TestSketchAllEmpty(t *testing.T) {
	h, _ := NewHasher(8, 1)
	if got := h.SketchAll(0, func(int) []Item { return nil }, 4); len(got) != 0 {
		t.Errorf("SketchAll(0) returned %d sketches", len(got))
	}
}

// TestSketchAllBackingIsolated verifies the shared-arena sketches do
// not alias: appending to one sketch must not clobber its neighbor.
func TestSketchAllBackingIsolated(t *testing.T) {
	h, _ := NewHasher(4, 2)
	out := h.SketchAll(2, func(i int) []Item { return []Item{Item(i + 1)} }, 1)
	next := out[1].Clone()
	grown := append(out[0], 999)
	_ = grown
	for j := range next {
		if out[1][j] != next[j] {
			t.Fatal("append on sketch 0 overwrote sketch 1 (missing capacity cap)")
		}
	}
}

func TestSketchIntoWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SketchInto with wrong width must panic")
		}
	}()
	h, _ := NewHasher(4, 5)
	h.SketchInto([]Item{1}, make(Sketch, 3))
}

func TestAgreementWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Agreement across widths must panic")
		}
	}()
	Sketch{1, 2}.Agreement(Sketch{1})
}

func TestHash2Hash3Distinguish(t *testing.T) {
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Error("Hash2 must be order-sensitive")
	}
	if Hash3(1, 2, 3) == Hash3(3, 2, 1) {
		t.Error("Hash3 must be order-sensitive")
	}
	if HashString("abc") == HashString("abd") {
		t.Error("HashString collision on near strings")
	}
	if HashString("abc") != HashBytes([]byte("abc")) {
		t.Error("HashString and HashBytes must agree")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := Sketch{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone must not alias")
	}
}

func BenchmarkSketch100Items(b *testing.B) {
	h, _ := NewHasher(64, 1)
	set := make([]Item, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range set {
		set[i] = rng.Uint64()
	}
	dst := make(Sketch, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SketchInto(set, dst)
	}
}

// TestSketchMatchesNaive pins the blocked SketchInto loop to the
// definitional implementation — per-item, per-permutation Apply with a
// running minimum — across set sizes straddling the 64-item block
// boundary. The blocked loop must be bit-exact.
func TestSketchMatchesNaive(t *testing.T) {
	h, err := NewHasher(8, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{0, 1, 7, 63, 64, 65, 128, 200} {
		set := make([]Item, n)
		for i := range set {
			set[i] = rng.Uint64()
		}
		naive := make(Sketch, h.K())
		for i := range naive {
			naive[i] = EmptySentinel
		}
		for _, x := range set {
			for i, p := range h.perms {
				if v := p.Apply(x); v < naive[i] {
					naive[i] = v
				}
			}
		}
		got := h.Sketch(set)
		for i := range naive {
			if got[i] != naive[i] {
				t.Errorf("n=%d coord %d: blocked %d, naive %d", n, i, got[i], naive[i])
			}
		}
	}
}

// TestApplyPermMatchesModChain pins the fused reduction against the
// two-step addMod(mulMod(...)) chain it replaced.
func TestApplyPermMatchesModChain(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 200000; i++ {
		a := 1 + uint64(rng.Int63n(MersennePrime61-1))
		b := uint64(rng.Int63n(MersennePrime61))
		xr := reduce(rng.Uint64())
		if got, want := applyPerm(a, b, xr), addMod(mulMod(a, xr), b); got != want {
			t.Fatalf("applyPerm(%d,%d,%d) = %d, want %d", a, b, xr, got, want)
		}
	}
}
