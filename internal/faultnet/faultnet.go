// Package faultnet injects deterministic network faults into net.Conn
// and net.Listener values: connection drops, read/write stalls, partial
// writes, and added latency. It exists so the comms stack (kvstore
// client, distributed stratification) can be tested — and hardened —
// against the failure modes real heterogeneous clusters exhibit,
// without ever touching a real flaky network.
//
// Faults are decided per I/O operation by a Plan. A Plan is either
// scripted (an explicit Action per operation, exact and replayable) or
// probabilistic (per-op rates drawn from a PRNG seeded by Plan.Seed and
// the connection id, so a given connection's fault sequence is a pure
// function of the plan). Wrap a single connection with Plan.Wrap, a
// whole listener with Plan.Listener, or install Plan.Wrapper as a
// kvstore.Server connection wrapper.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"pareto/internal/telemetry"
)

// Action is the fault decision applied to one Read or Write.
type Action int

// The fault actions.
const (
	// Pass performs the operation untouched.
	Pass Action = iota
	// Drop closes the underlying connection and fails the operation
	// (and every later one) with ErrInjected.
	Drop
	// Stall sleeps Plan.Stall before performing the operation,
	// simulating a hung peer or congested link.
	Stall
	// Partial transmits only a prefix of a write, then closes the
	// connection — the classic torn write. On reads it acts as Drop.
	Partial
	// Delay sleeps Plan.Latency before performing the operation,
	// simulating WAN latency without breaking anything.
	Delay
)

// String names the action for diagnostics.
func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Stall:
		return "stall"
	case Partial:
		return "partial"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// ErrInjected reports a fault injected by this package (as opposed to a
// genuine network failure).
var ErrInjected = errors.New("faultnet: injected fault")

// Plan scripts the faults for connections it wraps. The zero value
// injects nothing.
type Plan struct {
	// Seed drives the per-connection PRNGs; combined with the
	// connection id so each connection gets an independent but
	// reproducible fault sequence.
	Seed int64

	// Per-operation probabilities, evaluated in this order: DropRate,
	// StallRate, PartialWriteRate (writes only), DelayRate. They are
	// bands of one uniform draw, so their sum should stay ≤ 1.
	DropRate         float64
	StallRate        float64
	PartialWriteRate float64
	DelayRate        float64

	// Stall is the stall duration (0 = 50ms).
	Stall time.Duration
	// Latency is the added delay duration (0 = 1ms).
	Latency time.Duration

	// Script, when non-empty, overrides the probabilistic knobs: the
	// k-th I/O operation on a connection performs Script[k]; operations
	// past the end of the script Pass.
	Script []Action

	// DropAfterOps, when > 0, hard-kills the connection at the n-th
	// operation (0-indexed: op DropAfterOps and later Drop). It
	// applies on top of Script and the rates, simulating a peer that
	// dies partway through a protocol.
	DropAfterOps int

	// FaultConns, when > 0, limits injection to the first FaultConns
	// connections wrapped through a shared Wrapper or Listener; later
	// connections pass through clean. This simulates a transient
	// outage that a reconnecting client recovers from.
	FaultConns int

	// Telemetry, when non-nil, counts wrapped connections, fault
	// decisions, and injected faults by action — so the observed fault
	// mix can be checked against the configured rates. nil disables
	// instrumentation.
	Telemetry *telemetry.Registry
}

// faultMetrics is the pre-resolved counter bundle shared by every
// connection wrapped from one plan-with-registry.
type faultMetrics struct {
	conns    *telemetry.Counter
	ops      *telemetry.Counter
	injected [5]*telemetry.Counter // indexed by Action; Pass slot unused
}

func newFaultMetrics(reg *telemetry.Registry) *faultMetrics {
	if reg == nil {
		return nil
	}
	m := &faultMetrics{
		conns: reg.Counter("faultnet_conns_wrapped_total"),
		ops:   reg.Counter("faultnet_ops_total"),
	}
	for _, a := range []Action{Drop, Stall, Partial, Delay} {
		m.injected[a] = reg.Counter(`faultnet_injected_total{action="` + a.String() + `"}`)
	}
	return m
}

func (p Plan) stall() time.Duration {
	if p.Stall <= 0 {
		return 50 * time.Millisecond
	}
	return p.Stall
}

func (p Plan) latency() time.Duration {
	if p.Latency <= 0 {
		return time.Millisecond
	}
	return p.Latency
}

// Wrap returns conn with the plan's faults injected. id selects the
// connection's PRNG stream; wrapping two connections with the same id
// gives them identical fault sequences.
func (p Plan) Wrap(conn net.Conn, id int64) net.Conn {
	m := newFaultMetrics(p.Telemetry)
	if m != nil {
		m.conns.Inc()
	}
	return &faultConn{
		Conn: conn,
		plan: p,
		m:    m,
		rng:  rand.New(rand.NewSource(p.Seed ^ (id+1)*0x5851f42d4c957f2d)),
	}
}

// Wrapper returns a function wrapping successive connections with
// sequential ids — the shape kvstore.Server.SetConnWrapper expects.
func (p Plan) Wrapper() func(net.Conn) net.Conn {
	var mu sync.Mutex
	var next int64
	return func(conn net.Conn) net.Conn {
		mu.Lock()
		id := next
		next++
		mu.Unlock()
		if p.FaultConns > 0 && id >= int64(p.FaultConns) {
			return conn
		}
		return p.Wrap(conn, id)
	}
}

// Listener wraps ln so every accepted connection carries the plan's
// faults (with sequential connection ids).
func (p Plan) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, wrap: p.Wrapper()}
}

type faultListener struct {
	net.Listener
	wrap func(net.Conn) net.Conn
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.wrap(conn), nil
}

// faultConn is one wrapped connection. The mutex guards only the fault
// decision (op counter + PRNG); the I/O itself runs unlocked so
// concurrent Read/Write behave like the underlying conn.
type faultConn struct {
	net.Conn
	plan Plan
	m    *faultMetrics

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int
	dropped bool
}

// next decides the action for the current operation and advances the
// op counter. write reports whether the operation is a Write.
func (c *faultConn) next(write bool) Action {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped {
		return Drop
	}
	k := c.ops
	c.ops++
	if c.plan.DropAfterOps > 0 && k >= c.plan.DropAfterOps {
		c.dropped = true
		if c.m != nil {
			c.m.ops.Inc()
			c.m.injected[Drop].Inc()
		}
		return Drop
	}
	var act Action
	if len(c.plan.Script) > 0 {
		if k < len(c.plan.Script) {
			act = c.plan.Script[k]
		}
	} else {
		r := c.rng.Float64()
		switch {
		case r < c.plan.DropRate:
			act = Drop
		case r < c.plan.DropRate+c.plan.StallRate:
			act = Stall
		case r < c.plan.DropRate+c.plan.StallRate+c.plan.PartialWriteRate:
			act = Partial
		case r < c.plan.DropRate+c.plan.StallRate+c.plan.PartialWriteRate+c.plan.DelayRate:
			act = Delay
		}
	}
	if act == Drop || (act == Partial && !write) {
		c.dropped = true
		act = Drop
	}
	if c.m != nil {
		c.m.ops.Inc()
		if act != Pass {
			c.m.injected[act].Inc()
		}
	}
	return act
}

func (c *faultConn) Read(p []byte) (int, error) {
	switch c.next(false) {
	case Drop:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped on read", ErrInjected)
	case Stall:
		time.Sleep(c.plan.stall())
	case Delay:
		time.Sleep(c.plan.latency())
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	switch c.next(true) {
	case Drop:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped on write", ErrInjected)
	case Stall:
		time.Sleep(c.plan.stall())
	case Partial:
		n := len(p) / 2
		if n > 0 {
			n, _ = c.Conn.Write(p[:n])
		}
		c.mu.Lock()
		c.dropped = true
		c.mu.Unlock()
		c.Conn.Close()
		return n, fmt.Errorf("%w: partial write (%d of %d bytes)", ErrInjected, n, len(p))
	case Delay:
		time.Sleep(c.plan.latency())
	}
	return c.Conn.Write(p)
}
