package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory connection, the first
// wrapped with the plan.
func pipePair(t *testing.T, p Plan) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return p.Wrap(a, 0), b
}

func TestScriptedDrop(t *testing.T) {
	c, peer := pipePair(t, Plan{Script: []Action{Pass, Drop}})
	go func() {
		buf := make([]byte, 2)
		io.ReadFull(peer, buf)
	}()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("scripted Pass failed: %v", err)
	}
	if _, err := c.Write([]byte("no")); !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted Drop: got %v, want ErrInjected", err)
	}
	// Dropped connections stay dead.
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-drop read: got %v, want ErrInjected", err)
	}
}

func TestPartialWrite(t *testing.T) {
	c, peer := pipePair(t, Plan{Script: []Action{Partial}})
	got := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(peer)
		got <- buf
	}()
	payload := []byte("0123456789")
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write err %v, want ErrInjected", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("partial write sent %d bytes, want %d", n, len(payload)/2)
	}
	if buf := <-got; len(buf) != len(payload)/2 {
		t.Fatalf("peer received %d bytes, want %d", len(buf), len(payload)/2)
	}
}

func TestDropAfterOps(t *testing.T) {
	c, peer := pipePair(t, Plan{DropAfterOps: 2})
	go func() {
		buf := make([]byte, 2)
		io.ReadFull(peer, buf)
	}()
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatalf("op %d before threshold failed: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op past DropAfterOps: got %v, want ErrInjected", err)
	}
}

// TestSeededDeterminism checks that a connection's fault sequence is a
// pure function of (Seed, id): two conns with the same id draw the same
// actions, a different id draws a different sequence.
func TestSeededDeterminism(t *testing.T) {
	plan := Plan{Seed: 99, DropRate: 0.2, StallRate: 0.2, DelayRate: 0.2}
	seq := func(id int64) []Action {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		fc := plan.Wrap(a, id).(*faultConn)
		out := make([]Action, 64)
		for i := range out {
			out[i] = fc.next(false)
			fc.dropped = false // keep drawing past injected drops
		}
		return out
	}
	s1, s2, other := seq(3), seq(3), seq(4)
	same, diff := true, false
	for i := range s1 {
		if s1[i] != s2[i] {
			same = false
		}
		if s1[i] != other[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same (Seed, id) produced different fault sequences")
	}
	if !diff {
		t.Error("different ids produced identical fault sequences")
	}
}

func TestWrapperFaultConnsLimit(t *testing.T) {
	wrap := Plan{Script: []Action{Drop}, FaultConns: 1}.Wrapper()
	a1, b1 := net.Pipe()
	a2, b2 := net.Pipe()
	defer func() { a1.Close(); b1.Close(); a2.Close(); b2.Close() }()
	if _, ok := wrap(a1).(*faultConn); !ok {
		t.Error("first connection not wrapped")
	}
	if _, ok := wrap(a2).(*faultConn); ok {
		t.Error("connection past FaultConns wrapped")
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := Plan{Script: []Action{Drop}}.Listener(ln)
	defer fln.Close()
	go func() {
		c, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err == nil {
			defer c.Close()
			c.Read(make([]byte, 1))
		}
	}()
	conn, err := fln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn not faulted: %v", err)
	}
}

func TestDelayPasses(t *testing.T) {
	c, peer := pipePair(t, Plan{Script: []Action{Delay}, Latency: 5 * time.Millisecond})
	go func() {
		buf := make([]byte, 2)
		io.ReadFull(peer, buf)
	}()
	start := time.Now()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("delayed write failed: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("delay not applied: %v", d)
	}
}
