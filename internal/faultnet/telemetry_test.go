package faultnet

import (
	"errors"
	"net"
	"testing"
	"time"

	"pareto/internal/telemetry"
)

// TestTelemetryCounts: a scripted plan's observed fault mix must land
// in the registry exactly — one op per decision, one injected count
// per non-Pass action.
func TestTelemetryCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := Plan{
		Script:    []Action{Pass, Delay, Stall, Drop},
		Stall:     time.Microsecond,
		Latency:   time.Microsecond,
		Telemetry: reg,
	}
	a, b := net.Pipe()
	defer b.Close()
	conn := p.Wrap(a, 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	msg := []byte("x")
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(msg); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := conn.Write(msg); !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted drop: err = %v", err)
	}
	<-done

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"faultnet_conns_wrapped_total":            1,
		"faultnet_ops_total":                      4,
		`faultnet_injected_total{action="delay"}`: 1,
		`faultnet_injected_total{action="stall"}`: 1,
		`faultnet_injected_total{action="drop"}`:  1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Counters[`faultnet_injected_total{action="partial"}`]; got != 0 {
		t.Errorf("partial = %d, want 0", got)
	}
}

// TestTelemetryDropAfterOps: the hard-kill path must count its drop.
func TestTelemetryDropAfterOps(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := Plan{DropAfterOps: 1, Telemetry: reg}
	a, b := net.Pipe()
	defer b.Close()
	conn := p.Wrap(a, 0)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop-after-ops: err = %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`faultnet_injected_total{action="drop"}`]; got != 1 {
		t.Errorf("drop = %d, want 1", got)
	}
	if got := snap.Counters["faultnet_ops_total"]; got != 2 {
		t.Errorf("ops = %d, want 2", got)
	}
}
