package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if w := Workers(100, 0); w != runtime.GOMAXPROCS(0) && w != 100 {
		t.Errorf("Workers(100, 0) = %d, want GOMAXPROCS capped at n", w)
	}
	if w := Workers(3, 8); w != 3 {
		t.Errorf("Workers(3, 8) = %d, want 3", w)
	}
	if w := Workers(0, 8); w != 1 {
		t.Errorf("Workers(0, 8) = %d, want 1", w)
	}
	if w := Workers(10, -5); w < 1 {
		t.Errorf("Workers(10, -5) = %d, want ≥ 1", w)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForResultsIndependentOfWorkers(t *testing.T) {
	n := 517
	ref := make([]int, n)
	For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = i * i
		}
	})
	for _, workers := range []int{2, 3, 16} {
		out := make([]int, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i * i
			}
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], ref[i])
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	if busy := For(0, 4, func(lo, hi int) { called = true }); busy != 0 {
		t.Errorf("busy = %v for empty range", busy)
	}
	if called {
		t.Error("body called for n = 0")
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	// Indices 313 and 711 fail; every worker count must report 313,
	// exactly as the sequential loop would.
	n := 1000
	fail := map[int]bool{313: true, 711: true}
	for _, workers := range []int{1, 2, 4, 32} {
		_, err := ForErr(n, workers, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if fail[i] {
					return fmt.Errorf("index %d failed", i)
				}
			}
			return nil
		})
		if err == nil || err.Error() != "index 313 failed" {
			t.Errorf("workers=%d: err = %v, want index 313 failed", workers, err)
		}
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	busy, err := ForErr(100, 4, func(lo, hi int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if busy < 0 {
		t.Error("negative busy time")
	}
}

func TestForErrSingleChunkError(t *testing.T) {
	want := errors.New("boom")
	_, err := ForErr(5, 1, func(lo, hi int) error { return want })
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want %v", err, want)
	}
}

func TestForBusyTimeAccumulates(t *testing.T) {
	busy := For(10000, 4, func(lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		_ = s
	})
	if busy <= 0 {
		t.Error("busy time must be positive for nonempty work")
	}
}
