// Package parallel is the planning front-end's shared bounded
// fork-join helper: chunked, index-addressed loops over [0, n) whose
// results are bit-identical at any worker count.
//
// Every parallel stage of the planner (corpus construction, record
// decoding, corpus scans, profiling fan-out, placement materialization)
// follows the same discipline:
//
//   - Work is split into contiguous index chunks handed to a bounded
//     set of goroutines. Chunk *scheduling* is dynamic (an atomic
//     cursor, so skewed records cannot strand one worker with all the
//     heavy chunks), but every output is addressed by record index, so
//     the assembled result is independent of which worker ran which
//     chunk, of chunk boundaries, and of GOMAXPROCS.
//   - Reductions are either per-chunk partials combined in chunk order
//     or commutative (integer sums, maxima), never order-sensitive
//     float accumulation across a racy boundary.
//   - Errors are reported by ascending chunk index: each body scans its
//     range in ascending order and stops at its first failure, and
//     ForErr returns the error of the lowest failing chunk — which is
//     therefore the error of the lowest failing index, exactly what the
//     sequential loop would have returned.
//
// The helpers return the summed busy time of all workers so call sites
// can export per-stage parallel speedup (busy ÷ wall) via telemetry.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// chunksPerWorker oversplits the index space so dynamic scheduling can
// rebalance skewed chunks without making chunks so small that cursor
// contention dominates.
const chunksPerWorker = 4

// Workers resolves an effective worker count for n items: non-positive
// means GOMAXPROCS, and the result never exceeds n (an idle goroutine
// per empty chunk is pure overhead) or falls below 1.
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs body over contiguous chunks covering [0, n) on at most
// `workers` goroutines (≤ 0 means GOMAXPROCS) and blocks until all
// chunks finish. Bodies must write results only to index-addressed
// locations within their [lo, hi) range; under that contract the
// assembled output is identical at any worker count. Returns the
// summed busy time across workers.
func For(n, workers int, body func(lo, hi int)) time.Duration {
	busy, _ := run(n, workers, func(lo, hi int) error {
		body(lo, hi)
		return nil
	}, false)
	return busy
}

// ForErr is For with error reporting. Bodies must scan their range in
// ascending index order and return at the first failure; ForErr then
// returns the error of the lowest failing chunk, which equals the
// error the sequential loop would have produced. Once any chunk fails,
// undispatched chunks are skipped (their outputs are never read —
// the caller discards partial results on error).
func ForErr(n, workers int, body func(lo, hi int) error) (time.Duration, error) {
	return run(n, workers, body, true)
}

func run(n, workers int, body func(lo, hi int) error, failFast bool) (time.Duration, error) {
	if n <= 0 {
		return 0, nil
	}
	w := Workers(n, workers)
	if w == 1 {
		// Inline fast path: no goroutines, one chunk, same semantics.
		t0 := time.Now()
		err := body(0, n)
		return time.Since(t0), err
	}
	nChunks := w * chunksPerWorker
	if nChunks > n {
		nChunks = n
	}
	chunk := (n + nChunks - 1) / nChunks
	// Recompute the true chunk count after ceiling division so the
	// error slots align with the cursor's range.
	nChunks = (n + chunk - 1) / chunk
	errs := make([]error, nChunks)
	var cursor atomic.Int64
	var failed atomic.Bool
	var busyNs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			t0 := time.Now()
			for {
				if failFast && failed.Load() {
					break
				}
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					break
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if err := body(lo, hi); err != nil {
					errs[c] = err
					failed.Store(true)
				}
			}
			busyNs.Add(time.Since(t0).Nanoseconds())
		}()
	}
	wg.Wait()
	busy := time.Duration(busyNs.Load())
	// The cursor hands out chunks in ascending order, so every chunk
	// below the lowest failing one was dispatched (and completed)
	// before the failure could stop the loop: the first error found in
	// ascending chunk order is the lowest-index failure overall.
	for _, err := range errs {
		if err != nil {
			return busy, err
		}
	}
	return busy, nil
}
