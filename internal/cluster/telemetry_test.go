package cluster

import (
	"testing"
	"time"

	"pareto/internal/energy"
	"pareto/internal/telemetry"
)

// TestRunDetailedTelemetry: an instrumented run must surface per-node
// wall times and green/dirty energy on the Result, and record a "run"
// span with one child per loaded node plus cumulative energy gauges.
func TestRunDetailedTelemetry(t *testing.T) {
	c, err := PaperCluster(4, energy.DefaultPanel(), 172, 24)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Telemetry = reg
	tasks := make([]DetailedTask, 4)
	for i := range tasks {
		tasks[i] = func() (TaskReport, error) {
			time.Sleep(time.Millisecond)
			return TaskReport{Cost: 1e6}, nil
		}
	}
	// Noon offset so the traces carry green power.
	res, err := c.RunDetailed(12*3600, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeWallSec) != 4 || len(res.NodeGreen) != 4 {
		t.Fatalf("per-node slices: wall=%d green=%d", len(res.NodeWallSec), len(res.NodeGreen))
	}
	for i := range tasks {
		if res.NodeWallSec[i] <= 0 {
			t.Errorf("node %d wall time = %v, want > 0", i, res.NodeWallSec[i])
		}
		// Energy must partition exactly: green + dirty = total draw.
		total := c.Nodes[i].Power.Watts() * res.NodeTimes[i]
		if got := res.NodeGreen[i] + res.NodeDirty[i]; got < total*0.999 || got > total*1.001 {
			t.Errorf("node %d green+dirty = %v, want %v", i, got, total)
		}
	}
	if res.WallSec <= 0 {
		t.Errorf("run wall time = %v, want > 0", res.WallSec)
	}
	if res.GreenEnergy <= 0 {
		t.Errorf("green energy = %v at noon, want > 0", res.GreenEnergy)
	}

	snap := reg.Snapshot()
	run := snap.FindSpan("run")
	if run == nil {
		t.Fatal("no run span recorded")
	}
	if len(run.Children) != 4 {
		t.Fatalf("run span has %d children, want 4", len(run.Children))
	}
	for _, child := range run.Children {
		if child.DurationMs <= 0 {
			t.Errorf("node span %q duration = %v, want > 0", child.Name, child.DurationMs)
		}
	}
	if snap.Counters["cluster_runs_total"] != 1 {
		t.Errorf("runs = %d, want 1", snap.Counters["cluster_runs_total"])
	}
	wantTotal := (res.DirtyEnergy + res.GreenEnergy) / 3600
	gotTotal := snap.Gauges["energy_dirty_wh_total"] + snap.Gauges["energy_green_wh_total"]
	if gotTotal < wantTotal*0.999 || gotTotal > wantTotal*1.001 {
		t.Errorf("energy gauges total %v Wh, want %v", gotTotal, wantTotal)
	}
	if _, ok := snap.Gauges[`energy_node_dirty_wh{node="0"}`]; !ok {
		t.Error("per-node dirty energy gauge missing")
	}
}

// TestRunDetailedNilTelemetry: wall times still populate with no
// registry attached.
func TestRunDetailedNilTelemetry(t *testing.T) {
	c, err := PaperCluster(2, energy.DefaultPanel(), 172, 24)
	if err != nil {
		t.Fatal(err)
	}
	tasks := []DetailedTask{
		func() (TaskReport, error) { return TaskReport{Cost: 1e5}, nil },
		nil,
	}
	res, err := c.RunDetailed(0, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeWallSec[0] < 0 || res.NodeWallSec[1] != 0 {
		t.Errorf("wall times: %v", res.NodeWallSec)
	}
	if res.WallSec <= 0 {
		t.Errorf("run wall = %v", res.WallSec)
	}
}
