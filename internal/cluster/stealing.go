package cluster

import (
	"fmt"
	"sort"

	"pareto/internal/energy"
)

// StealingSchedule simulates an idealized work-stealing execution
// (paper §I's strawman): the job is pre-split into many chunks, and
// whenever a node goes idle it grabs the next unprocessed chunk. The
// outcome of that policy is classical greedy list scheduling, which we
// compute exactly: chunks are assigned in order to whichever node
// becomes free first (accounting for node speeds).
//
// Work stealing balances *sizes* perfectly as chunk granularity grows —
// but it is payload-oblivious: for analytics workloads the per-chunk
// costs themselves inflate when content is fragmented arbitrarily
// (e.g. candidate-pattern explosion in partitioned frequent pattern
// mining), which is exactly the effect the paper's stratified
// partitioning avoids. The bench harness pairs this scheduler with
// real workload chunk costs to reproduce that comparison.
func (c *Cluster) StealingSchedule(chunkCosts []float64, offset float64) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for i, cost := range chunkCosts {
		if cost < 0 {
			return nil, fmt.Errorf("cluster: chunk %d has negative cost", i)
		}
	}
	finish := make([]float64, len(c.Nodes))
	res := &Result{
		NodeTimes: make([]float64, len(c.Nodes)),
		NodeCosts: make([]float64, len(c.Nodes)),
		NodeDirty: make([]float64, len(c.Nodes)),
		NodeGreen: make([]float64, len(c.Nodes)),
	}
	// Stable earliest-finish-first; ties go to the fastest node, which
	// is who wins the race for the queue in a real stealing runtime.
	order := make([]int, len(c.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return c.Nodes[order[a]].Speed > c.Nodes[order[b]].Speed
	})
	for _, cost := range chunkCosts {
		best := order[0]
		for _, i := range order {
			if finish[i] < finish[best] {
				best = i
			}
		}
		finish[best] += c.SimTime(best, cost)
		res.NodeCosts[best] += cost
	}
	for i, t := range finish {
		res.NodeTimes[i] = t
		if t > res.Makespan {
			res.Makespan = t
		}
		watts := c.Nodes[i].Power.Watts()
		res.TotalEnergy += watts * t
		d := energy.DirtyEnergy(watts, c.Nodes[i].Trace, offset, t)
		res.NodeDirty[i] = d
		res.DirtyEnergy += d
		// Same green accounting as RunDetailed: trace-covered draw,
		// clamped against float round-off.
		green := watts*t - d
		if green < 0 {
			green = 0
		}
		res.NodeGreen[i] = green
		res.GreenEnergy += green
	}
	return res, nil
}
