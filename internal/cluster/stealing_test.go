package cluster

import (
	"math"
	"testing"

	"pareto/internal/energy"
)

func stealCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := PaperCluster(4, energy.DefaultPanel(), 172, 24)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStealingScheduleSingleChunk(t *testing.T) {
	c := stealCluster(t)
	res, err := c.StealingSchedule([]float64{4e6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The single chunk goes to the fastest node (tie at finish 0).
	if res.NodeCosts[0] != 4e6 {
		t.Errorf("chunk not on fastest node: %v", res.NodeCosts)
	}
	if math.Abs(res.Makespan-1) > 1e-9 {
		t.Errorf("makespan %v, want 1s (4e6 cost at speed 4)", res.Makespan)
	}
}

func TestStealingScheduleEmptyAndErrors(t *testing.T) {
	c := stealCluster(t)
	res, err := c.StealingSchedule(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.DirtyEnergy != 0 {
		t.Error("empty schedule accrued work")
	}
	if _, err := c.StealingSchedule([]float64{-1}, 0); err == nil {
		t.Error("negative cost accepted")
	}
	empty := &Cluster{CostRate: 1}
	if _, err := empty.StealingSchedule([]float64{1}, 0); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestStealingScheduleEnergyAccounting(t *testing.T) {
	c := stealCluster(t)
	costs := make([]float64, 40)
	for i := range costs {
		costs[i] = 1e6
	}
	// At midnight everything is dirty: dirty must equal total.
	res, err := c.StealingSchedule(costs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DirtyEnergy-res.TotalEnergy) > 1e-9 {
		t.Errorf("midnight dirty %v != total %v", res.DirtyEnergy, res.TotalEnergy)
	}
	// At noon some energy is green.
	noon, err := c.StealingSchedule(costs, 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	if noon.DirtyEnergy >= res.DirtyEnergy {
		t.Errorf("noon dirty %v not below midnight %v", noon.DirtyEnergy, res.DirtyEnergy)
	}
}

func TestStealingScheduleApproachesFluidBound(t *testing.T) {
	// With many small chunks, greedy stealing's makespan approaches
	// total/(Σ speed·rate) — near-perfect load balance, the property
	// that makes stealing attractive when payload does not matter.
	c := stealCluster(t)
	costs := make([]float64, 1000)
	for i := range costs {
		costs[i] = 1e5
	}
	res, err := c.StealingSchedule(costs, 0)
	if err != nil {
		t.Fatal(err)
	}
	fluid := 1000 * 1e5 / ((4 + 3 + 2 + 1) * c.CostRate)
	if res.Makespan > fluid*1.05 {
		t.Errorf("makespan %v more than 5%% above fluid bound %v", res.Makespan, fluid)
	}
}
