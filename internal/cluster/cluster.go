// Package cluster models the heterogeneous execution environment of
// paper §V-A: nodes of four types with relative speeds 4x/3x/2x/1x,
// power draws 440/345/250/155 W, and green-energy traces from four
// datacenter sites.
//
// The paper induces speed heterogeneity on a homogeneous physical
// cluster by pinning busy loops onto cores; that only scales each
// node's effective throughput. Here, workloads execute for real (the
// actual mining/compression algorithms run on the actual partitions)
// and report an abstract deterministic cost; a node's simulated
// execution time is cost / (Speed × CostRate). This preserves exactly
// the property the busy loops created — identical work takes k× longer
// on a 1/k-speed node — while making every experiment deterministic
// and machine-independent.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"pareto/internal/energy"
	"pareto/internal/opt"
	"pareto/internal/sampling"
	"pareto/internal/telemetry"
)

// NodeSpec describes one cluster node.
type NodeSpec struct {
	// ID indexes the node within the cluster.
	ID int
	// Name is a human-readable label.
	Name string
	// Type is the paper's machine class, 1 (fastest) to 4 (slowest).
	Type int
	// Speed is the relative processing speed (type 1 → 4.0 … type 4 → 1.0).
	Speed float64
	// Power is the node's electrical draw model.
	Power energy.PowerModel
	// Location is the site whose solar trace powers the node.
	Location energy.Location
	// Trace is the node's green-energy availability.
	Trace *energy.Trace
}

// Cluster is a set of nodes plus the cost→time calibration.
type Cluster struct {
	Nodes []NodeSpec
	// CostRate is the abstract cost units a Speed-1.0 node retires per
	// second. It calibrates simulated time; experiments compare
	// strategies under the same rate, so its absolute value only sets
	// the time scale.
	CostRate float64
	// Telemetry, when non-nil, records per-run spans (a "run" span with
	// one child per node) and cumulative energy/busy-time metrics into
	// the registry. nil disables instrumentation; per-node wall times
	// are reported on Result either way.
	Telemetry *telemetry.Registry
}

// DefaultCostRate makes one million cost units ≈ one second on the
// slowest node type.
const DefaultCostRate = 1e6

// SpeedOfType maps the paper's machine types to relative speeds.
func SpeedOfType(t int) (float64, error) {
	if t < 1 || t > 4 {
		return 0, fmt.Errorf("cluster: machine type %d, want 1..4", t)
	}
	return float64(5 - t), nil
}

// PaperCluster builds a p-node cluster cycling through the four
// machine types and the four datacenter locations, with per-node solar
// traces of the given length starting at dayOfYear. This mirrors the
// §V-A testbed at any partition count.
func PaperCluster(p int, panel energy.Panel, dayOfYear, hours int) (*Cluster, error) {
	if p < 1 {
		return nil, errors.New("cluster: need at least one node")
	}
	locs := energy.GoogleDatacenterLocations()
	nodes := make([]NodeSpec, p)
	for i := 0; i < p; i++ {
		typ := i%4 + 1
		speed, err := SpeedOfType(typ)
		if err != nil {
			return nil, err
		}
		pw, err := energy.MachineType(typ)
		if err != nil {
			return nil, err
		}
		loc := locs[i%len(locs)]
		// Distinct seeds per node so same-site nodes see weather
		// variation, as co-located racks do.
		loc.CloudSeed += int64(i) * 7919
		tr, err := energy.GenerateTrace(loc, panel, dayOfYear, hours)
		if err != nil {
			return nil, fmt.Errorf("cluster: trace for node %d: %w", i, err)
		}
		nodes[i] = NodeSpec{
			ID:       i,
			Name:     fmt.Sprintf("node%02d-type%d-%s", i, typ, loc.Name),
			Type:     typ,
			Speed:    speed,
			Power:    pw,
			Location: loc,
			Trace:    tr,
		}
	}
	c := &Cluster{Nodes: nodes, CostRate: DefaultCostRate}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// HomogeneousCluster builds p identical type-1 nodes (for baselines
// and tests isolating payload skew from hardware heterogeneity).
func HomogeneousCluster(p int, panel energy.Panel, dayOfYear, hours int) (*Cluster, error) {
	c, err := PaperCluster(p, panel, dayOfYear, hours)
	if err != nil {
		return nil, err
	}
	pw, err := energy.MachineType(1)
	if err != nil {
		return nil, err
	}
	for i := range c.Nodes {
		c.Nodes[i].Type = 1
		c.Nodes[i].Speed = 4
		c.Nodes[i].Power = pw
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks the cluster's calibration: a positive finite
// CostRate and positive finite per-node speeds. Run, RunDetailed,
// StealingSchedule, and ProfileAllWithRates validate on entry so a
// mutated or hand-built cluster fails loudly instead of silently
// propagating Inf/NaN times into Makespan and the energy totals.
func (c *Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return errors.New("cluster: no nodes")
	}
	if !(c.CostRate > 0) || math.IsInf(c.CostRate, 1) {
		return fmt.Errorf("cluster: CostRate %v, want finite > 0", c.CostRate)
	}
	for i := range c.Nodes {
		if s := c.Nodes[i].Speed; !(s > 0) || math.IsInf(s, 1) {
			return fmt.Errorf("cluster: node %d Speed %v, want finite > 0", i, s)
		}
	}
	return nil
}

// SimTime converts an abstract cost into simulated seconds on node i.
// A non-positive (or NaN) Speed or CostRate contributes zero time
// rather than Inf/NaN; callers that bypass Run/StealingSchedule should
// Validate first to surface the misconfiguration as an error.
func (c *Cluster) SimTime(node int, cost float64) float64 {
	if cost <= 0 {
		return 0
	}
	denom := c.Nodes[node].Speed * c.CostRate
	if !(denom > 0) {
		return 0
	}
	return cost / denom
}

// Task is one node's share of a job: it performs the real computation
// and returns its abstract cost (plus any workload-specific result the
// caller captures via closure).
type Task func() (cost float64, err error)

// TaskReport decomposes a task's demand: Cost scales with node speed
// (CPU work), FixedSeconds does not (I/O and other rate-limited work —
// the regime that makes the paper's LZ77 runs insensitive to CPU
// heterogeneity, Tables II/III).
type TaskReport struct {
	Cost         float64
	FixedSeconds float64
}

// DetailedTask is a Task returning a cost decomposition.
type DetailedTask func() (TaskReport, error)

// Result summarizes one distributed job execution.
type Result struct {
	// NodeTimes[i] is node i's simulated busy time in seconds.
	NodeTimes []float64
	// NodeCosts[i] is the abstract cost node i reported.
	NodeCosts []float64
	// Makespan is the maximum node time — the job's completion time,
	// all nodes starting together.
	Makespan float64
	// NodeDirty[i] is node i's dirty energy in joules over its busy time.
	NodeDirty []float64
	// DirtyEnergy is the total dirty energy across nodes.
	DirtyEnergy float64
	// TotalEnergy is the total electrical energy consumed (J).
	TotalEnergy float64
	// NodeGreen[i] is node i's green (trace-covered) energy in joules:
	// total draw minus dirty draw, never negative.
	NodeGreen []float64
	// GreenEnergy is the total green energy across nodes (J).
	GreenEnergy float64
	// NodeWallSec[i] is the real (not simulated) wall-clock seconds
	// node i's task goroutine ran — the actual algorithm execution.
	NodeWallSec []float64
	// WallSec is the real wall-clock duration of the whole Run call.
	WallSec float64
}

// Imbalance quantifies load balance: makespan divided by the mean busy
// time of the loaded nodes. 1.0 is a perfectly balanced job; larger
// values mean fast nodes idle while the bottleneck node finishes.
func (r *Result) Imbalance() float64 {
	var sum float64
	n := 0
	for _, t := range r.NodeTimes {
		if t > 0 {
			sum += t
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return r.Makespan / (sum / float64(n))
}

// Run executes one task per node concurrently (real goroutine
// parallelism over the real algorithms) and converts the reported
// costs into simulated times and energies. tasks[i] may be nil when
// node i received no data; it contributes zero time and energy.
// offset is the job's start position (seconds) within the traces.
func (c *Cluster) Run(offset float64, tasks []Task) (*Result, error) {
	detailed := make([]DetailedTask, len(tasks))
	for i, task := range tasks {
		if task == nil {
			continue
		}
		task := task
		detailed[i] = func() (TaskReport, error) {
			cost, err := task()
			return TaskReport{Cost: cost}, err
		}
	}
	return c.RunDetailed(offset, detailed)
}

// RunDetailed is Run for tasks that split their demand into
// speed-scaled cost and speed-independent fixed seconds:
// node time = cost/(speed × rate) + fixed.
func (c *Cluster) RunDetailed(offset float64, tasks []DetailedTask) (*Result, error) {
	if len(tasks) != len(c.Nodes) {
		return nil, fmt.Errorf("cluster: %d tasks for %d nodes", len(tasks), len(c.Nodes))
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	runStart := time.Now()
	span := c.Telemetry.StartSpan("run")
	defer span.End()
	reports := make([]TaskReport, len(tasks))
	errs := make([]error, len(tasks))
	wallSec := make([]float64, len(tasks))
	var wg sync.WaitGroup
	for i, task := range tasks {
		if task == nil {
			continue
		}
		wg.Add(1)
		go func(i int, task DetailedTask) {
			defer wg.Done()
			sp := span.Child(c.Nodes[i].Name)
			t0 := time.Now()
			reports[i], errs[i] = task()
			wallSec[i] = time.Since(t0).Seconds()
			sp.End()
		}(i, task)
	}
	wg.Wait()
	// A multi-node job can fail on several nodes at once; report every
	// failure, not just the first — diagnosing a flapping cluster from
	// one error at a time is hopeless.
	if err := joinNodeErrs("task", errs); err != nil {
		return nil, err
	}
	res := &Result{
		NodeTimes:   make([]float64, len(tasks)),
		NodeCosts:   make([]float64, len(tasks)),
		NodeDirty:   make([]float64, len(tasks)),
		NodeGreen:   make([]float64, len(tasks)),
		NodeWallSec: wallSec,
	}
	for i := range tasks {
		if reports[i].FixedSeconds < 0 {
			return nil, fmt.Errorf("cluster: node %d reported negative fixed seconds", i)
		}
		t := c.SimTime(i, reports[i].Cost) + reports[i].FixedSeconds
		res.NodeTimes[i] = t
		res.NodeCosts[i] = reports[i].Cost
		if t > res.Makespan {
			res.Makespan = t
		}
		watts := c.Nodes[i].Power.Watts()
		res.TotalEnergy += watts * t
		d := energy.DirtyEnergy(watts, c.Nodes[i].Trace, offset, t)
		res.NodeDirty[i] = d
		res.DirtyEnergy += d
		// Green = draw the trace covered. DirtyEnergy floors per-step
		// surplus at zero, so the difference is never negative; clamp
		// anyway against float round-off.
		green := watts*t - d
		if green < 0 {
			green = 0
		}
		res.NodeGreen[i] = green
		res.GreenEnergy += green
	}
	res.WallSec = time.Since(runStart).Seconds()
	c.recordRun(res)
	return res, nil
}

// recordRun folds one job execution into the cumulative telemetry:
// per-node green/dirty energy (Wh) and busy seconds, plus totals.
func (c *Cluster) recordRun(res *Result) {
	reg := c.Telemetry
	if reg == nil {
		return
	}
	const wh = 1.0 / 3600 // joules → watt-hours
	for i := range c.Nodes {
		node := strconv.Itoa(i)
		reg.FloatGauge(`energy_node_dirty_wh{node="` + node + `"}`).Add(res.NodeDirty[i] * wh)
		reg.FloatGauge(`energy_node_green_wh{node="` + node + `"}`).Add(res.NodeGreen[i] * wh)
		reg.FloatGauge(`cluster_node_busy_sec_total{node="` + node + `"}`).Add(res.NodeTimes[i])
	}
	reg.FloatGauge("energy_dirty_wh_total").Add(res.DirtyEnergy * wh)
	reg.FloatGauge("energy_green_wh_total").Add(res.GreenEnergy * wh)
	reg.Counter("cluster_runs_total").Inc()
}

// ProfileAll runs the progressive-sampling loop on every node
// concurrently: for each scheduled sample size, runSample executes the
// real algorithm on a representative sample and returns its abstract
// cost; the node's speed converts cost to simulated seconds, and a
// linear utility function is fitted per node (paper §III-A). The
// returned models are ready for the Pareto modeler, with dirty rates
// taken over [offset, offset+window) of each node's trace.
func (c *Cluster) ProfileAll(sizes []int, runSample func(size int) (float64, error), offset, window float64) ([]opt.NodeModel, error) {
	return c.ProfileAllWithRates(sizes, runSample, c.DirtyRates(offset, window))
}

// DirtyRates computes every node's dirty-rate constant k_i (paper
// §III-B) over [offset, offset+window) of its trace. Split out of
// ProfileAll so planners can overlap the trace integration with sample
// drawing and profiling — the two touch disjoint data.
func (c *Cluster) DirtyRates(offset, window float64) []float64 {
	rates := make([]float64, len(c.Nodes))
	var wg sync.WaitGroup
	wg.Add(len(c.Nodes))
	for i := range c.Nodes {
		go func(i int) {
			defer wg.Done()
			rates[i] = energy.DirtyRate(c.Nodes[i].Power.Watts(), c.Nodes[i].Trace, offset, window)
		}(i)
	}
	wg.Wait()
	return rates
}

// ProfileAllWithRates is ProfileAll with precomputed dirty rates
// (typically from a DirtyRates call overlapped with sample profiling).
func (c *Cluster) ProfileAllWithRates(sizes []int, runSample func(size int) (float64, error), rates []float64) ([]opt.NodeModel, error) {
	if len(rates) != len(c.Nodes) {
		return nil, fmt.Errorf("cluster: %d dirty rates for %d nodes", len(rates), len(c.Nodes))
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	models := make([]opt.NodeModel, len(c.Nodes))
	errs := make([]error, len(c.Nodes))
	var wg sync.WaitGroup
	for i := range c.Nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fit, _, err := sampling.ProfileNode(sizes, func(sz int) (float64, error) {
				cost, err := runSample(sz)
				if err != nil {
					return 0, err
				}
				return c.SimTime(i, cost), nil
			})
			if err != nil {
				errs[i] = err
				return
			}
			models[i] = opt.NodeModel{Time: fit, DirtyRate: rates[i]}
		}(i)
	}
	wg.Wait()
	if err := joinNodeErrs("profiling", errs); err != nil {
		return nil, err
	}
	return models, nil
}

// joinNodeErrs aggregates per-node failures into one error naming
// every failed node (errors.Join), nil when all succeeded.
func joinNodeErrs(what string, errs []error) error {
	var all []error
	for i, err := range errs {
		if err != nil {
			all = append(all, fmt.Errorf("cluster: %s node %d: %w", what, i, err))
		}
	}
	return errors.Join(all...)
}

// P returns the node count.
func (c *Cluster) P() int { return len(c.Nodes) }
