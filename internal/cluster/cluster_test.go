package cluster

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"pareto/internal/energy"
)

func testCluster(t *testing.T, p int) *Cluster {
	t.Helper()
	c, err := PaperCluster(p, energy.DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperClusterShape(t *testing.T) {
	c := testCluster(t, 8)
	if c.P() != 8 {
		t.Fatalf("P = %d", c.P())
	}
	wantSpeed := []float64{4, 3, 2, 1, 4, 3, 2, 1}
	wantWatts := []float64{440, 345, 250, 155, 440, 345, 250, 155}
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Errorf("node %d ID %d", i, n.ID)
		}
		if n.Speed != wantSpeed[i] {
			t.Errorf("node %d speed %v, want %v", i, n.Speed, wantSpeed[i])
		}
		if w := n.Power.Watts(); w != wantWatts[i] {
			t.Errorf("node %d watts %v, want %v", i, w, wantWatts[i])
		}
		if n.Trace == nil || len(n.Trace.Power) != 48 {
			t.Errorf("node %d trace missing", i)
		}
	}
	if _, err := PaperCluster(0, energy.DefaultPanel(), 1, 24); err == nil {
		t.Error("0 nodes accepted")
	}
}

func TestHomogeneousCluster(t *testing.T) {
	c, err := HomogeneousCluster(4, energy.DefaultPanel(), 172, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		if n.Speed != 4 || n.Type != 1 {
			t.Errorf("node %d not type-1: %+v", i, n)
		}
	}
}

func TestSimTime(t *testing.T) {
	c := testCluster(t, 4)
	// Node 0 is 4x, node 3 is 1x: same cost → 4x time difference.
	cost := 2e6
	t0 := c.SimTime(0, cost)
	t3 := c.SimTime(3, cost)
	if math.Abs(t3/t0-4) > 1e-9 {
		t.Errorf("time ratio %v, want 4", t3/t0)
	}
	if got := c.SimTime(0, 0); got != 0 {
		t.Errorf("zero cost time %v", got)
	}
	if got := c.SimTime(0, -5); got != 0 {
		t.Errorf("negative cost time %v", got)
	}
	// Absolute calibration: 1e6 cost on a 1x node is 1 second.
	if got := c.SimTime(3, 1e6); math.Abs(got-1) > 1e-9 {
		t.Errorf("1e6 cost on 1x node = %v s, want 1", got)
	}
}

func TestRunAggregates(t *testing.T) {
	c := testCluster(t, 4)
	tasks := []Task{
		func() (float64, error) { return 4e6, nil }, // 4x node → 1 s
		func() (float64, error) { return 3e6, nil }, // 3x node → 1 s
		nil, // idle node
		func() (float64, error) { return 2e6, nil }, // 1x node → 2 s
	}
	res, err := c.Run(12*3600, tasks) // noon: some green available
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NodeTimes[0]-1) > 1e-9 || math.Abs(res.NodeTimes[3]-2) > 1e-9 {
		t.Errorf("node times %v", res.NodeTimes)
	}
	if res.NodeTimes[2] != 0 || res.NodeDirty[2] != 0 {
		t.Error("idle node accrued time or energy")
	}
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Errorf("makespan %v, want 2", res.Makespan)
	}
	// Energy sanity: dirty ≤ total, both positive here.
	if res.DirtyEnergy <= 0 || res.TotalEnergy <= 0 || res.DirtyEnergy > res.TotalEnergy+1e-9 {
		t.Errorf("dirty %v, total %v", res.DirtyEnergy, res.TotalEnergy)
	}
	var sumDirty float64
	for _, d := range res.NodeDirty {
		sumDirty += d
	}
	if math.Abs(sumDirty-res.DirtyEnergy) > 1e-9 {
		t.Error("per-node dirty does not sum to total")
	}
}

func TestRunNightIsAllDirty(t *testing.T) {
	c := testCluster(t, 2)
	tasks := []Task{
		func() (float64, error) { return 4e6, nil },
		func() (float64, error) { return 3e6, nil },
	}
	res, err := c.Run(0, tasks) // midnight
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DirtyEnergy-res.TotalEnergy) > 1e-9 {
		t.Errorf("at night dirty %v must equal total %v", res.DirtyEnergy, res.TotalEnergy)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	c := testCluster(t, 2)
	boom := errors.New("task failed")
	_, err := c.Run(0, []Task{
		func() (float64, error) { return 1, nil },
		func() (float64, error) { return 0, boom },
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Run(0, []Task{nil}); err == nil {
		t.Error("task/node count mismatch accepted")
	}
}

func TestProfileAllLearnsSpeedHeterogeneity(t *testing.T) {
	c := testCluster(t, 4)
	// A perfectly linear workload: cost = 100 units per record.
	sizes := []int{100, 500, 1000, 5000, 10000}
	models, err := c.ProfileAll(sizes, func(sz int) (float64, error) {
		return float64(sz) * 100, nil
	}, 0, 3600)
	if err != nil {
		t.Fatal(err)
	}
	// Learned slopes must reflect the 4:3:2:1 speeds.
	s0, s3 := models[0].Time.Slope, models[3].Time.Slope
	if math.Abs(s3/s0-4) > 1e-6 {
		t.Errorf("slope ratio %v, want 4", s3/s0)
	}
	// Dirty rates must be nonnegative and ordered plausibly: at
	// midnight (offset 0, 1h window) rate equals full draw.
	if math.Abs(models[0].DirtyRate-440) > 1e-9 {
		t.Errorf("midnight dirty rate %v, want 440", models[0].DirtyRate)
	}
}

func TestProfileAllErrorPropagation(t *testing.T) {
	c := testCluster(t, 2)
	boom := errors.New("sample failed")
	_, err := c.ProfileAll([]int{1, 2}, func(int) (float64, error) { return 0, boom }, 0, 100)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

// Zero or negative CostRate/Speed used to slip through SimTime as an
// unchecked division, silently propagating Inf/NaN into Makespan and
// the energy totals. Both constructors must yield Validate-clean
// clusters, and every execution entry point must reject a corrupted
// one loudly.
func TestValidateGuardsCalibration(t *testing.T) {
	for name, build := range map[string]func() (*Cluster, error){
		"paper":       func() (*Cluster, error) { return PaperCluster(8, energy.DefaultPanel(), 172, 24) },
		"homogeneous": func() (*Cluster, error) { return HomogeneousCluster(8, energy.DefaultPanel(), 172, 24) },
	} {
		c, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: fresh cluster invalid: %v", name, err)
		}
	}

	corruptions := map[string]func(*Cluster){
		"zero rate":  func(c *Cluster) { c.CostRate = 0 },
		"neg rate":   func(c *Cluster) { c.CostRate = -1e6 },
		"nan rate":   func(c *Cluster) { c.CostRate = math.NaN() },
		"inf rate":   func(c *Cluster) { c.CostRate = math.Inf(1) },
		"zero speed": func(c *Cluster) { c.Nodes[1].Speed = 0 },
		"neg speed":  func(c *Cluster) { c.Nodes[0].Speed = -3 },
		"nan speed":  func(c *Cluster) { c.Nodes[2].Speed = math.NaN() },
	}
	for name, corrupt := range corruptions {
		c := testCluster(t, 4)
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate passed", name)
			continue
		}
		if _, err := c.Run(0, []Task{
			func() (float64, error) { return 1e6, nil }, nil, nil, nil,
		}); err == nil {
			t.Errorf("%s: Run accepted corrupted cluster", name)
		}
		if _, err := c.StealingSchedule([]float64{1e6}, 0); err == nil {
			t.Errorf("%s: StealingSchedule accepted corrupted cluster", name)
		}
		if _, err := c.ProfileAllWithRates([]int{1, 2}, func(int) (float64, error) { return 1, nil }, make([]float64, 4)); err == nil {
			t.Errorf("%s: ProfileAllWithRates accepted corrupted cluster", name)
		}
	}
	if err := (&Cluster{CostRate: 1}).Validate(); err == nil {
		t.Error("empty cluster validated")
	}
}

// SimTime on a corrupted cluster must contribute zero time, never
// Inf/NaN — the belt to Validate's suspenders for callers that hit
// SimTime directly.
func TestSimTimeGuardsDivision(t *testing.T) {
	c := testCluster(t, 4)
	c.CostRate = 0
	if got := c.SimTime(0, 1e6); got != 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("zero CostRate SimTime = %v, want 0", got)
	}
	c = testCluster(t, 4)
	c.Nodes[0].Speed = 0
	if got := c.SimTime(0, 1e6); got != 0 {
		t.Errorf("zero Speed SimTime = %v, want 0", got)
	}
	c.Nodes[0].Speed = math.NaN()
	if got := c.SimTime(0, 1e6); got != 0 {
		t.Errorf("NaN Speed SimTime = %v, want 0", got)
	}
	c.Nodes[0].Speed = -2
	if got := c.SimTime(0, 1e6); got != 0 {
		t.Errorf("negative Speed SimTime = %v, want 0", got)
	}
}

// StealingSchedule now reports green energy alongside dirty, matching
// RunDetailed's accounting.
func TestStealingScheduleGreenAccounting(t *testing.T) {
	c := testCluster(t, 4)
	costs := make([]float64, 40)
	for i := range costs {
		costs[i] = 1e6
	}
	res, err := c.StealingSchedule(costs, 12*3600) // noon
	if err != nil {
		t.Fatal(err)
	}
	if res.GreenEnergy <= 0 {
		t.Error("noon run reported no green energy")
	}
	var sum float64
	for i, g := range res.NodeGreen {
		if g < 0 {
			t.Errorf("node %d green %v < 0", i, g)
		}
		sum += g
	}
	if math.Abs(sum-res.GreenEnergy) > 1e-9 {
		t.Error("per-node green does not sum to total")
	}
	if math.Abs(res.GreenEnergy+res.DirtyEnergy-res.TotalEnergy) > 1e-6 {
		t.Errorf("green %v + dirty %v != total %v", res.GreenEnergy, res.DirtyEnergy, res.TotalEnergy)
	}
}

func TestSpeedOfType(t *testing.T) {
	for typ, want := range map[int]float64{1: 4, 2: 3, 3: 2, 4: 1} {
		got, err := SpeedOfType(typ)
		if err != nil || got != want {
			t.Errorf("SpeedOfType(%d) = %v, %v", typ, got, err)
		}
	}
	if _, err := SpeedOfType(0); err == nil {
		t.Error("type 0 accepted")
	}
	if _, err := SpeedOfType(5); err == nil {
		t.Error("type 5 accepted")
	}
}

func TestNodeTraceHeterogeneity(t *testing.T) {
	// Same-site nodes get different seeds; their traces must differ.
	c := testCluster(t, 8)
	a, b := c.Nodes[0].Trace, c.Nodes[4].Trace // both location index 0
	same := true
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("co-located nodes share identical traces")
	}
}

func TestResultImbalance(t *testing.T) {
	r := &Result{NodeTimes: []float64{2, 2, 2}, Makespan: 2}
	if got := r.Imbalance(); math.Abs(got-1) > 1e-12 {
		t.Errorf("balanced imbalance %v", got)
	}
	r = &Result{NodeTimes: []float64{1, 0, 3}, Makespan: 3}
	if got := r.Imbalance(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("imbalance %v, want 1.5 (idle node excluded)", got)
	}
	if (&Result{}).Imbalance() != 0 {
		t.Error("empty result imbalance must be 0")
	}
}

// TestMultiNodeErrorsAggregated: when several nodes fail in one run,
// every failure must surface (errors.Join), not just the first.
func TestMultiNodeErrorsAggregated(t *testing.T) {
	c := testCluster(t, 3)
	boom0 := errors.New("node0 exploded")
	boom2 := errors.New("node2 exploded")
	_, err := c.Run(0, []Task{
		func() (float64, error) { return 0, boom0 },
		func() (float64, error) { return 1, nil },
		func() (float64, error) { return 0, boom2 },
	})
	if !errors.Is(err, boom0) || !errors.Is(err, boom2) {
		t.Fatalf("aggregated error lost a failure: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "node 0") || !strings.Contains(msg, "node 2") {
		t.Errorf("error does not name both nodes: %q", msg)
	}

	// ProfileAll aggregates the same way. The sample function runs
	// concurrently across nodes, so the counter must be atomic.
	var fails atomic.Int64
	_, err = c.ProfileAll([]int{1, 2}, func(int) (float64, error) {
		return 0, fmt.Errorf("sample run %d failed", fails.Add(1))
	}, 0, 100)
	if err == nil {
		t.Fatal("ProfileAll swallowed failures")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok || len(joined.Unwrap()) != 3 {
		t.Errorf("ProfileAll error not a 3-node join: %v", err)
	}
}
