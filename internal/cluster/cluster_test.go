package cluster

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"pareto/internal/energy"
)

func testCluster(t *testing.T, p int) *Cluster {
	t.Helper()
	c, err := PaperCluster(p, energy.DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperClusterShape(t *testing.T) {
	c := testCluster(t, 8)
	if c.P() != 8 {
		t.Fatalf("P = %d", c.P())
	}
	wantSpeed := []float64{4, 3, 2, 1, 4, 3, 2, 1}
	wantWatts := []float64{440, 345, 250, 155, 440, 345, 250, 155}
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Errorf("node %d ID %d", i, n.ID)
		}
		if n.Speed != wantSpeed[i] {
			t.Errorf("node %d speed %v, want %v", i, n.Speed, wantSpeed[i])
		}
		if w := n.Power.Watts(); w != wantWatts[i] {
			t.Errorf("node %d watts %v, want %v", i, w, wantWatts[i])
		}
		if n.Trace == nil || len(n.Trace.Power) != 48 {
			t.Errorf("node %d trace missing", i)
		}
	}
	if _, err := PaperCluster(0, energy.DefaultPanel(), 1, 24); err == nil {
		t.Error("0 nodes accepted")
	}
}

func TestHomogeneousCluster(t *testing.T) {
	c, err := HomogeneousCluster(4, energy.DefaultPanel(), 172, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		if n.Speed != 4 || n.Type != 1 {
			t.Errorf("node %d not type-1: %+v", i, n)
		}
	}
}

func TestSimTime(t *testing.T) {
	c := testCluster(t, 4)
	// Node 0 is 4x, node 3 is 1x: same cost → 4x time difference.
	cost := 2e6
	t0 := c.SimTime(0, cost)
	t3 := c.SimTime(3, cost)
	if math.Abs(t3/t0-4) > 1e-9 {
		t.Errorf("time ratio %v, want 4", t3/t0)
	}
	if got := c.SimTime(0, 0); got != 0 {
		t.Errorf("zero cost time %v", got)
	}
	if got := c.SimTime(0, -5); got != 0 {
		t.Errorf("negative cost time %v", got)
	}
	// Absolute calibration: 1e6 cost on a 1x node is 1 second.
	if got := c.SimTime(3, 1e6); math.Abs(got-1) > 1e-9 {
		t.Errorf("1e6 cost on 1x node = %v s, want 1", got)
	}
}

func TestRunAggregates(t *testing.T) {
	c := testCluster(t, 4)
	tasks := []Task{
		func() (float64, error) { return 4e6, nil }, // 4x node → 1 s
		func() (float64, error) { return 3e6, nil }, // 3x node → 1 s
		nil, // idle node
		func() (float64, error) { return 2e6, nil }, // 1x node → 2 s
	}
	res, err := c.Run(12*3600, tasks) // noon: some green available
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NodeTimes[0]-1) > 1e-9 || math.Abs(res.NodeTimes[3]-2) > 1e-9 {
		t.Errorf("node times %v", res.NodeTimes)
	}
	if res.NodeTimes[2] != 0 || res.NodeDirty[2] != 0 {
		t.Error("idle node accrued time or energy")
	}
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Errorf("makespan %v, want 2", res.Makespan)
	}
	// Energy sanity: dirty ≤ total, both positive here.
	if res.DirtyEnergy <= 0 || res.TotalEnergy <= 0 || res.DirtyEnergy > res.TotalEnergy+1e-9 {
		t.Errorf("dirty %v, total %v", res.DirtyEnergy, res.TotalEnergy)
	}
	var sumDirty float64
	for _, d := range res.NodeDirty {
		sumDirty += d
	}
	if math.Abs(sumDirty-res.DirtyEnergy) > 1e-9 {
		t.Error("per-node dirty does not sum to total")
	}
}

func TestRunNightIsAllDirty(t *testing.T) {
	c := testCluster(t, 2)
	tasks := []Task{
		func() (float64, error) { return 4e6, nil },
		func() (float64, error) { return 3e6, nil },
	}
	res, err := c.Run(0, tasks) // midnight
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DirtyEnergy-res.TotalEnergy) > 1e-9 {
		t.Errorf("at night dirty %v must equal total %v", res.DirtyEnergy, res.TotalEnergy)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	c := testCluster(t, 2)
	boom := errors.New("task failed")
	_, err := c.Run(0, []Task{
		func() (float64, error) { return 1, nil },
		func() (float64, error) { return 0, boom },
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Run(0, []Task{nil}); err == nil {
		t.Error("task/node count mismatch accepted")
	}
}

func TestProfileAllLearnsSpeedHeterogeneity(t *testing.T) {
	c := testCluster(t, 4)
	// A perfectly linear workload: cost = 100 units per record.
	sizes := []int{100, 500, 1000, 5000, 10000}
	models, err := c.ProfileAll(sizes, func(sz int) (float64, error) {
		return float64(sz) * 100, nil
	}, 0, 3600)
	if err != nil {
		t.Fatal(err)
	}
	// Learned slopes must reflect the 4:3:2:1 speeds.
	s0, s3 := models[0].Time.Slope, models[3].Time.Slope
	if math.Abs(s3/s0-4) > 1e-6 {
		t.Errorf("slope ratio %v, want 4", s3/s0)
	}
	// Dirty rates must be nonnegative and ordered plausibly: at
	// midnight (offset 0, 1h window) rate equals full draw.
	if math.Abs(models[0].DirtyRate-440) > 1e-9 {
		t.Errorf("midnight dirty rate %v, want 440", models[0].DirtyRate)
	}
}

func TestProfileAllErrorPropagation(t *testing.T) {
	c := testCluster(t, 2)
	boom := errors.New("sample failed")
	_, err := c.ProfileAll([]int{1, 2}, func(int) (float64, error) { return 0, boom }, 0, 100)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestSpeedOfType(t *testing.T) {
	for typ, want := range map[int]float64{1: 4, 2: 3, 3: 2, 4: 1} {
		got, err := SpeedOfType(typ)
		if err != nil || got != want {
			t.Errorf("SpeedOfType(%d) = %v, %v", typ, got, err)
		}
	}
	if _, err := SpeedOfType(0); err == nil {
		t.Error("type 0 accepted")
	}
	if _, err := SpeedOfType(5); err == nil {
		t.Error("type 5 accepted")
	}
}

func TestNodeTraceHeterogeneity(t *testing.T) {
	// Same-site nodes get different seeds; their traces must differ.
	c := testCluster(t, 8)
	a, b := c.Nodes[0].Trace, c.Nodes[4].Trace // both location index 0
	same := true
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("co-located nodes share identical traces")
	}
}

func TestResultImbalance(t *testing.T) {
	r := &Result{NodeTimes: []float64{2, 2, 2}, Makespan: 2}
	if got := r.Imbalance(); math.Abs(got-1) > 1e-12 {
		t.Errorf("balanced imbalance %v", got)
	}
	r = &Result{NodeTimes: []float64{1, 0, 3}, Makespan: 3}
	if got := r.Imbalance(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("imbalance %v, want 1.5 (idle node excluded)", got)
	}
	if (&Result{}).Imbalance() != 0 {
		t.Error("empty result imbalance must be 0")
	}
}

// TestMultiNodeErrorsAggregated: when several nodes fail in one run,
// every failure must surface (errors.Join), not just the first.
func TestMultiNodeErrorsAggregated(t *testing.T) {
	c := testCluster(t, 3)
	boom0 := errors.New("node0 exploded")
	boom2 := errors.New("node2 exploded")
	_, err := c.Run(0, []Task{
		func() (float64, error) { return 0, boom0 },
		func() (float64, error) { return 1, nil },
		func() (float64, error) { return 0, boom2 },
	})
	if !errors.Is(err, boom0) || !errors.Is(err, boom2) {
		t.Fatalf("aggregated error lost a failure: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "node 0") || !strings.Contains(msg, "node 2") {
		t.Errorf("error does not name both nodes: %q", msg)
	}

	// ProfileAll aggregates the same way. The sample function runs
	// concurrently across nodes, so the counter must be atomic.
	var fails atomic.Int64
	_, err = c.ProfileAll([]int{1, 2}, func(int) (float64, error) {
		return 0, fmt.Errorf("sample run %d failed", fails.Add(1))
	}, 0, 100)
	if err == nil {
		t.Fatal("ProfileAll swallowed failures")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok || len(joined.Unwrap()) != 3 {
		t.Errorf("ProfileAll error not a 3-node join: %v", err)
	}
}
