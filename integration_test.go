package pareto

// End-to-end integration: the complete §IV deployment in one test —
// live store instances, the full plan pipeline, pipelined placement,
// barrier-separated phases, distributed mining on the placed data,
// rebalance after re-planning, and snapshot-persisted recovery.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pareto/internal/datasets"
	"pareto/internal/kvstore"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/workloads/apriori"
)

func startStores(t *testing.T, n int, snapshotDir string) []*kvstore.Client {
	t.Helper()
	clients := make([]*kvstore.Client, n)
	for i := 0; i < n; i++ {
		srv := kvstore.NewServer(nil)
		if snapshotDir != "" {
			if err := srv.EnableSnapshot(filepath.Join(snapshotDir, fmt.Sprintf("node%d.pkvs", i))); err != nil {
				t.Fatal(err)
			}
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := kvstore.Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	return clients
}

func TestIntegrationFullPipelineOverKVStores(t *testing.T) {
	const p = 4
	cfg := datasets.RCV1Like(0.001)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := PaperCluster(p, DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(corpus, cl)
	if err != nil {
		t.Fatal(err)
	}
	fw.TraceOffset = 12 * 3600

	const support = 0.1
	profile := func(indices []int) (float64, error) {
		txns := make([]apriori.Transaction, len(indices))
		for k, i := range indices {
			txns[k] = corpus.Docs[i].Terms
		}
		pr, err := apriori.MineLocal(txns, support, 2)
		if err != nil {
			return 0, err
		}
		return pr.Cost, nil
	}
	plan, err := fw.Plan(HetAware, profile)
	if err != nil {
		t.Fatal(err)
	}

	// Place onto live stores with pipelining.
	clients := startStores(t, p, "")
	st, err := NewKVStore(clients, 64, "itest")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.PlaceTo(plan, st); err != nil {
		t.Fatal(err)
	}

	// Workers: read own partition, mine locally, barrier, then verify
	// the union prunes to the same frequent count everywhere.
	barrierHost := clients[0]
	var mu sync.Mutex
	locals := make([]*apriori.PartitionResult, p)
	var wg sync.WaitGroup
	errCh := make(chan error, p)
	for j := 0; j < p; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			b, err := kvstore.NewBarrier(barrierHost, "itest-phases", p)
			if err != nil {
				errCh <- err
				return
			}
			records, err := st.ReadPartition(j)
			if err != nil {
				errCh <- err
				return
			}
			txns := make([]apriori.Transaction, 0, len(records))
			for _, rec := range records {
				d, rest, err := pivots.DecodeTextRecord(rec)
				if err != nil {
					errCh <- err
					return
				}
				if len(rest) != 0 {
					errCh <- fmt.Errorf("trailing bytes in record")
					return
				}
				txns = append(txns, d.Terms)
			}
			pr, err := apriori.MineLocal(txns, support, 2)
			if err != nil {
				errCh <- err
				return
			}
			mu.Lock()
			locals[j] = pr
			mu.Unlock()
			errCh <- b.Await()
		}(j)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	cands := apriori.GlobalCandidates(locals)
	if len(cands) == 0 {
		t.Fatal("no candidates mined from placed partitions")
	}

	// The distributed result over the *placed* partitions must match
	// the in-memory reference run.
	parts := make([][]apriori.Transaction, p)
	for j := 0; j < p; j++ {
		for _, r := range plan.Assign.Parts[j] {
			parts[j] = append(parts[j], corpus.Docs[r].Terms)
		}
	}
	ref, err := apriori.MineDistributed(parts, support, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != ref.Candidates {
		t.Errorf("placed-data candidates %d, reference %d", len(cands), ref.Candidates)
	}
}

func TestIntegrationRebalanceAndRecovery(t *testing.T) {
	const p = 3
	cfg := datasets.RCV1Like(0.0006)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := PaperCluster(p, DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(corpus, cl)
	if err != nil {
		t.Fatal(err)
	}
	profile := func(indices []int) (float64, error) {
		var c float64
		for _, i := range indices {
			c += 500 * float64(corpus.Weight(i))
		}
		return c, nil
	}
	plan, err := fw.Plan(HetAware, profile)
	if err != nil {
		t.Fatal(err)
	}
	// Re-plan for energy and rebalance with minimal moves.
	fw.Alpha = 0.99
	plan2, err := fw.Plan(HetEnergyAware, profile)
	if err != nil {
		t.Fatal(err)
	}
	rebalanced, moves, err := partitioner.Rebalance(plan.Assign, plan2.Assign.Sizes())
	if err != nil {
		t.Fatal(err)
	}
	if err := rebalanced.Validate(corpus.Len()); err != nil {
		t.Fatal(err)
	}
	if len(moves) != partitioner.MinMoves(plan.Assign.Sizes(), plan2.Assign.Sizes()) {
		t.Errorf("%d moves, want minimum", len(moves))
	}

	// Place, snapshot, and reload through server persistence.
	dir := t.TempDir()
	clients := startStores(t, p, dir)
	st, err := NewKVStore(clients, 32, "rtest")
	if err != nil {
		t.Fatal(err)
	}
	if err := Place(corpus, rebalanced, st); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < p; j++ {
		rep, err := clients[j%p].Do("SAVE")
		if err != nil || rep.Err() != nil {
			t.Fatalf("SAVE on %d: %v %v", j, err, rep.Err())
		}
	}
	// Fresh engine loading node 0's snapshot must hold its partitions.
	e := kvstore.NewEngine()
	if err := e.LoadSnapshotFile(filepath.Join(dir, "node0.pkvs")); err != nil {
		t.Fatal(err)
	}
	rep := e.Do("LLEN", []byte("rtest:0"))
	if rep.Int != int64(len(rebalanced.Parts[0])) {
		t.Errorf("snapshot partition 0 has %d records, want %d", rep.Int, len(rebalanced.Parts[0]))
	}
}
