// Geo-distributed example: the deployment style of paper §II, where a
// job may be scheduled onto any subset of servers across regions to
// maximize green energy use. A 16-node pool spans the four datacenter
// sites; SelectNodes picks which 8 should host partitions at different
// α values, and ExactFrontier enumerates the full time/energy frontier
// of the chosen subset.
//
//	go run ./examples/geodistributed
package main

import (
	"fmt"
	"log"

	"pareto"
	"pareto/internal/energy"
	"pareto/internal/sampling"
)

func main() {
	// A 16-node pool: the paper's four machine types across four sites.
	pool, err := pareto.PaperCluster(16, pareto.DefaultPanel(), 172, 48)
	if err != nil {
		log.Fatal(err)
	}
	const offset = 12 * 3600 // schedule the job at local noon
	const total = 2_000_000  // data units to place

	// Per-node models: time slope from relative speed; dirty rate from
	// each node's own solar trace (in a real run these come from the
	// profiling pipeline).
	models := make([]pareto.NodeModel, pool.P())
	for i, n := range pool.Nodes {
		models[i] = pareto.NodeModel{
			Time:      sampling.LinearFit{Slope: 1e-6 / n.Speed * 4},
			DirtyRate: energy.DirtyRate(n.Power.Watts(), n.Trace, offset, 3600),
		}
	}

	fmt.Println("selecting 8 of 16 pool nodes:")
	for _, alpha := range []float64{1.0, 0.99, 0.5} {
		chosen, plan, err := pareto.SelectNodes(models, total, 8, alpha)
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, c := range chosen {
			names = append(names, fmt.Sprintf("%d(%s,%.0fW dirty)", c,
				pool.Nodes[c].Location.Name, models[c].DirtyRate))
		}
		fmt.Printf("\nα=%.2f → makespan %.2fs, dirty %.0f J\n", alpha, plan.Makespan, plan.DirtyEnergy)
		for _, n := range names {
			fmt.Printf("   node %s\n", n)
		}
	}

	// Exact Pareto frontier of the full pool.
	pts, err := pareto.ExactFrontier(models, total, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact frontier of the 16-node pool (%d vertices):\n", len(pts))
	for _, p := range pts {
		fmt.Printf("  α=%-8.4g time %6.2fs  dirty %8.0f J\n", p.Alpha, p.Makespan, p.DirtyEnergy)
	}
}
