// Quickstart: partition a small text corpus across a heterogeneous
// 4-node cluster and compare the Stratified baseline with the
// Het-Aware plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pareto"
	"pareto/internal/datasets"
)

func main() {
	// 1. A dataset: a synthetic RCV1-like corpus with latent topics.
	cfg := datasets.RCV1Like(0.001)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := pareto.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A cluster: the paper's 4 machine types (speeds 4x/3x/2x/1x,
	// 440/345/250/155 W) with solar traces from 4 datacenter sites.
	cl, err := pareto.PaperCluster(4, pareto.DefaultPanel(), 172, 48)
	if err != nil {
		log.Fatal(err)
	}

	fw, err := pareto.New(corpus, cl)
	if err != nil {
		log.Fatal(err)
	}
	fw.TraceOffset = 12 * 3600 // start the job at local noon

	// 3. A workload model: here simply "cost proportional to document
	// size". The framework profiles it on stratified progressive
	// samples to learn each node's time model.
	workload := func(indices []int) (float64, error) {
		var cost float64
		for _, i := range indices {
			cost += 1500 * float64(corpus.Weight(i))
		}
		return cost, nil
	}
	run := func(node int, indices []int) (float64, error) { return workload(indices) }

	baseline, err := fw.Plan(pareto.Stratified, nil)
	if err != nil {
		log.Fatal(err)
	}
	hetAware, err := fw.Plan(pareto.HetAware, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stratified baseline sizes: %v\n", baseline.Assign.Sizes())
	fmt.Printf("het-aware sizes:          %v\n", hetAware.Assign.Sizes())

	baseRes, err := fw.Execute(baseline, run)
	if err != nil {
		log.Fatal(err)
	}
	hetRes, err := fw.Execute(hetAware, run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:  makespan %.3fs, dirty energy %.1f J\n", baseRes.Makespan, baseRes.DirtyEnergy)
	fmt.Printf("het-aware: makespan %.3fs, dirty energy %.1f J\n", hetRes.Makespan, hetRes.DirtyEnergy)
	fmt.Printf("speedup: %.0f%%\n", 100*(1-hetRes.Makespan/baseRes.Makespan))

	// 4. Place the winning plan into an in-memory store (swap in
	// NewDiskStore or NewKVStore for real deployments).
	st := pareto.NewMemoryStore()
	if err := fw.PlaceTo(hetAware, st); err != nil {
		log.Fatal(err)
	}
	recs, err := st.ReadPartition(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition 0 holds %d serialized records\n", len(recs))
}
