// Green energy example: the paper's Figure 5 in miniature. Sweeps the
// scalarization weight α from 1 toward 0 on a tree-mining workload and
// prints the measured time/dirty-energy Pareto frontier, the Stratified
// baseline point sitting above it, and each node's solar situation.
//
//	go run ./examples/greenenergy
package main

import (
	"fmt"
	"log"

	"pareto/internal/bench"
	"pareto/internal/cluster"
	"pareto/internal/datasets"
	"pareto/internal/energy"
	"pareto/internal/pivots"
)

func main() {
	trees, _, err := datasets.GenerateTrees(datasets.SwissProtLike(0.004))
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := pivots.NewTreeCorpus(trees)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.PaperCluster(8, energy.DefaultPanel(), 172, 48)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("node green-energy situation at noon (job start):")
	const offset = 12 * 3600
	for _, n := range cl.Nodes {
		k := energy.DirtyRate(n.Power.Watts(), n.Trace, offset, 3600)
		fmt.Printf("  %-32s draw %4.0f W  solar %4.0f W  dirty rate k=%4.0f W\n",
			n.Name, n.Power.Watts(), n.Trace.MeanPower(offset, 3600), k)
	}
	fmt.Println()

	w := &bench.TreeMining{Trees: corpus, SupportFrac: 0.3, MaxNodes: 4}
	opts := bench.DefaultOptions()
	alphas := []float64{1.0, 0.999, 0.995, 0.99, 0.95, 0.9, 0.5}
	rows, err := bench.MeasureFrontier(w, cl, alphas, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured Pareto frontier (tree mining, 8 partitions):")
	fmt.Print(bench.FormatFrontier(rows))
	fmt.Println("\nα = 1 minimizes time; lowering α shifts load toward nodes with")
	fmt.Println("surplus solar power until dirty energy bottoms out near α ≈ 0.9,")
	fmt.Println("exactly the behaviour reported in the paper's Figure 5.")
}
