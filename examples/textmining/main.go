// Text mining example: the paper's Figure 3 workload in miniature.
// Runs partition-based distributed Apriori (Savasere et al.) over an
// RCV1-like corpus under all three partitioning strategies and reports
// execution time, dirty energy, and the candidate-pattern counts that
// partition skew inflates.
//
//	go run ./examples/textmining
package main

import (
	"fmt"
	"log"

	"pareto/internal/bench"
	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/datasets"
	"pareto/internal/energy"
	"pareto/internal/pivots"
)

func main() {
	// Same configuration as the Figure 3 bench suite. Mining cost is
	// non-linear in partition size: at much smaller scales the tiny
	// partitions Het-Aware places on slow nodes can explode the local
	// candidate space (scaled-support granularity), a degenerate
	// regime the paper's full-size datasets never enter.
	cfg := datasets.RCV1Like(0.001)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		log.Fatal(err)
	}
	workload := &bench.TextMining{Docs: corpus, SupportFrac: 0.1, MaxLen: 3}
	cl, err := cluster.PaperCluster(8, energy.DefaultPanel(), 172, 48)
	if err != nil {
		log.Fatal(err)
	}

	opts := bench.DefaultOptions()
	fmt.Printf("distributed Apriori on %d docs, 8 heterogeneous nodes, support %.0f%%\n\n",
		corpus.Len(), 100*workload.SupportFrac)
	rows, err := bench.CompareStrategies(workload, cl, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatRows(rows))

	var base, het *bench.StrategyRow
	for i := range rows {
		switch rows[i].Strategy {
		case core.Stratified:
			base = &rows[i]
		case core.HetAware:
			het = &rows[i]
		}
	}
	fmt.Printf("\nHet-Aware runs %.0f%% faster than the stratified baseline.\n",
		100*bench.Improvement(base.TimeSec, het.TimeSec))
	fmt.Println("All strategies find the same globally frequent itemsets;")
	fmt.Println("only the candidate (false-positive) work differs with skew.")
}
