// Graph compression example: the paper's Figure 4 workload in
// miniature. Compresses a UK-like webgraph with the webgraph codec
// under similar-together placement, and contrasts placement schemes:
// grouping similar adjacency lists yields lower-entropy partitions and
// a better compression ratio at identical partition sizes.
//
//	go run ./examples/graphcompression
package main

import (
	"fmt"
	"log"

	"pareto/internal/bench"
	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/datasets"
	"pareto/internal/energy"
	"pareto/internal/pivots"
)

func main() {
	g, _, err := datasets.GenerateGraph(datasets.UKLike(0.0006))
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := pivots.NewGraphCorpus(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UK-like webgraph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	cl, err := cluster.PaperCluster(8, energy.DefaultPanel(), 172, 48)
	if err != nil {
		log.Fatal(err)
	}
	workload := &bench.GraphCompression{Graph: corpus, Window: 7}

	// The three strategies (similar-together placement, α = 0.99).
	opts := bench.DefaultOptions()
	opts.Alpha = 0.99
	rows, err := bench.CompareStrategies(workload, cl, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatRows(rows))

	// Placement-scheme ablation at equal sizes: similarity grouping vs
	// representative mixing.
	for _, scheme := range []struct {
		name string
		s    core.Config
	}{
		{"similar-together", core.Config{Strategy: core.Stratified, Scheme: workload.Scheme()}},
		{"representative", core.Config{Strategy: core.Stratified, Scheme: 0}},
	} {
		plan, err := core.BuildPlan(corpus, cl, workload.Profile, scheme.s)
		if err != nil {
			log.Fatal(err)
		}
		_, quality, err := workload.Run(cl, plan.Assign, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placement %-17s compression ratio %.3f\n", scheme.name, quality["compression-ratio"])
	}
}
