// KV cluster example: the paper's §IV deployment in miniature. Starts
// four kvstore server instances (one per "node"), plans a Het-Aware
// partitioning, places the partitions onto the stores with pipelined
// writes, synchronizes the phases with the fetch-and-increment global
// barrier, and reads one partition back.
//
//	go run ./examples/kvcluster
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"pareto"
	"pareto/internal/datasets"
	"pareto/internal/kvstore"
	"pareto/internal/pivots"
)

func main() {
	// One store per cluster node — never "cluster mode", because the
	// framework must control which partition lands where.
	const p = 4
	var servers []*kvstore.Server
	var clients []*kvstore.Client
	for i := 0; i < p; i++ {
		srv := kvstore.NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		c, err := kvstore.Dial(addr, time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
		fmt.Printf("node %d store listening on %s\n", i, addr)
	}

	// Dataset and plan.
	cfg := datasets.RCV1Like(0.0008)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := pareto.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := pareto.PaperCluster(p, pareto.DefaultPanel(), 172, 48)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := pareto.New(corpus, cl)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fw.Plan(pareto.HetAware, func(indices []int) (float64, error) {
		var c float64
		for _, i := range indices {
			c += 1000 * float64(corpus.Weight(i))
		}
		return c, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned sizes: %v\n", plan.Assign.Sizes())

	// Worker phase structure, separated by the global barrier exactly
	// as §IV separates pivot extraction / sketching / clustering /
	// placement. Worker j talks to its own store; the barrier counter
	// lives on store 0.
	var wg sync.WaitGroup
	for j := 0; j < p; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			barrier, err := kvstore.NewBarrier(clients[0], "phases", p)
			if err != nil {
				log.Fatal(err)
			}
			// Phase 1: place this node's partition (pipelined writes).
			st, err := pareto.NewKVStore([]*kvstore.Client{clients[j]}, 64, fmt.Sprintf("node%d", j))
			if err != nil {
				log.Fatal(err)
			}
			recs := make([][]byte, 0, len(plan.Assign.Parts[j]))
			for _, r := range plan.Assign.Parts[j] {
				recs = append(recs, corpus.AppendRecord(nil, r))
			}
			if err := st.WritePartition(0, recs); err != nil {
				log.Fatal(err)
			}
			if err := barrier.Await(); err != nil {
				log.Fatal(err)
			}
			// Phase 2: every node's data is in place; read our share
			// back and verify it decodes.
			back, err := st.ReadPartition(0)
			if err != nil {
				log.Fatal(err)
			}
			for _, rec := range back {
				if _, _, err := pivots.DecodeTextRecord(rec); err != nil {
					log.Fatalf("node %d: corrupt record: %v", j, err)
				}
			}
			if err := barrier.Await(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("node %d verified %d records\n", j, len(back))
		}(j)
	}
	wg.Wait()
	fmt.Println("all phases complete; partitions live on their stores")
}
