// Package pareto is a heterogeneity- and green-energy-aware data
// partitioning framework for distributed analytics, reproducing
// Chakrabarti, Parthasarathy & Stewart, "A Pareto Framework for Data
// Analytics on Heterogeneous Systems" (ICPP 2017).
//
// Given a dataset (trees, graphs or text), a heterogeneous cluster
// model, and an analytics workload, the framework
//
//  1. stratifies the data by content (min-wise independent linear
//     permutation sketches + compositeKModes clustering),
//  2. learns a per-node execution-time model by running the actual
//     workload on small representative progressive samples,
//  3. estimates each node's dirty-power rate from solar traces,
//  4. sizes partitions by solving a scalarized two-objective linear
//     program — minimize α·makespan + (1−α)·dirty energy — whose
//     solutions are Pareto-optimal, and
//  5. places records into partitions either as stratified
//     representative samples (for pattern mining) or grouped by
//     similarity (for compression), on memory, disk, or a
//     Redis-compatible store served by this module.
//
// The quick path:
//
//	fw, err := pareto.New(corpus, cl)
//	plan, err := fw.Plan(pareto.HetAware, profileFn)
//	result, err := fw.Execute(plan, runFn)
//
// See examples/ for complete programs and DESIGN.md for the paper
// mapping.
package pareto

import (
	"errors"

	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/energy"
	"pareto/internal/frontier"
	"pareto/internal/opt"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/strata"
)

// Re-exported data-model types. Construct corpora with NewTreeCorpus,
// NewGraphCorpus and NewTextCorpus.
type (
	// Corpus is the domain-independent dataset view.
	Corpus = pivots.Corpus
	// Tree is a rooted labeled tree record.
	Tree = pivots.Tree
	// Graph is an adjacency-list directed graph.
	Graph = pivots.Graph
	// Doc is a bag-of-terms text document.
	Doc = pivots.Doc
	// TreeCorpus, GraphCorpus and TextCorpus are the concrete corpora.
	TreeCorpus  = pivots.TreeCorpus
	GraphCorpus = pivots.GraphCorpus
	TextCorpus  = pivots.TextCorpus
)

// Corpus constructors.
var (
	// NewTreeCorpus validates trees and precomputes LCA pivot sets.
	NewTreeCorpus = pivots.NewTreeCorpus
	// NewGraphCorpus validates a graph and uses adjacency pivot sets.
	NewGraphCorpus = pivots.NewGraphCorpus
	// NewTextCorpus validates documents over a vocabulary.
	NewTextCorpus = pivots.NewTextCorpus
)

// Cluster modeling re-exports.
type (
	// Cluster is the heterogeneous execution environment.
	Cluster = cluster.Cluster
	// NodeSpec describes one node (speed, power, solar trace).
	NodeSpec = cluster.NodeSpec
	// Panel is a PV installation spec.
	Panel = energy.Panel
	// NodeModel is a learned (time model, dirty rate) pair.
	NodeModel = opt.NodeModel
)

// Cluster constructors.
var (
	// PaperCluster cycles the paper's four machine types and four
	// datacenter sites across p nodes.
	PaperCluster = cluster.PaperCluster
	// HomogeneousCluster builds p identical fastest-type nodes.
	HomogeneousCluster = cluster.HomogeneousCluster
	// DefaultPanel is a ~450 W-peak PV installation.
	DefaultPanel = energy.DefaultPanel
)

// Strategy selects the paper's partition-sizing policy.
type Strategy = core.Strategy

// The three evaluated strategies.
const (
	// Stratified is the payload-aware, hardware-oblivious baseline.
	Stratified = core.Stratified
	// HetAware minimizes the makespan (α = 1).
	HetAware = core.HetAware
	// HetEnergyAware trades makespan for dirty energy (α < 1).
	HetEnergyAware = core.HetEnergyAware
)

// Pipeline configuration and outputs.
type (
	// Config is the full pipeline configuration.
	Config = core.Config
	// Plan is a complete partitioning decision.
	Plan = core.Plan
	// ProfileFunc measures the workload on a representative sample.
	ProfileFunc = core.ProfileFunc
	// RunPartition executes one node's partition.
	RunPartition = core.RunPartition
	// Result carries per-node simulated times and energies.
	Result = cluster.Result
	// Scheme selects record placement within partition sizes.
	Scheme = partitioner.Scheme
	// Assignment maps partitions to record indices.
	Assignment = partitioner.Assignment
	// Store persists placed partitions.
	Store = partitioner.Store
)

// Placement schemes.
const (
	// Representative makes every partition a stratified sample.
	Representative = partitioner.Representative
	// SimilarTogether groups similar records (low-entropy partitions).
	SimilarTogether = partitioner.SimilarTogether
)

// Storage backends.
var (
	// NewMemoryStore keeps partitions in process memory.
	NewMemoryStore = partitioner.NewMemoryStore
	// NewDiskStore writes one self-delimiting file per partition.
	NewDiskStore = partitioner.NewDiskStore
	// NewKVStore places partitions as lists on kvstore instances.
	NewKVStore = partitioner.NewKVStore
	// Place ships every partition of an assignment to a store.
	Place = partitioner.Place
)

// BuildPlan runs the full pipeline with explicit configuration; the
// Framework type below covers the common cases.
var BuildPlan = core.BuildPlan

// Execute runs a planned job on the cluster.
var Execute = core.Execute

// FrontierPoint is one point of a time/dirty-energy Pareto frontier.
type FrontierPoint = opt.FrontierPoint

// Advanced modeler entry points.
var (
	// Frontier samples the Pareto frontier at the given α values.
	Frontier = opt.Frontier
	// ExactFrontier enumerates every frontier vertex by α bisection.
	ExactFrontier = opt.ExactFrontier
	// SelectNodes chooses which p nodes of a larger pool host
	// partitions (the geo-distributed deployment of paper §II).
	SelectNodes = opt.SelectNodes
	// DefaultAlphaSweep is the α ladder used by the frontier figures.
	DefaultAlphaSweep = opt.DefaultAlphaSweep
)

// Warm-started frontier enumeration (internal/frontier): sweeps and
// exact bisections that reuse one simplex basis across α values,
// produce bit-identical results to the cold Frontier/ExactFrontier
// paths, and can be served over HTTP.
type (
	// FrontierConfig configures a warm-started enumeration (α samples,
	// workers, objective axes, telemetry).
	FrontierConfig = frontier.Config
	// FrontierResult carries the enumerated points plus solve stats.
	FrontierResult = frontier.Result
	// FrontierService serves enumerations over HTTP at /frontier.
	FrontierService = frontier.Service
	// FrontierAxis is one objective dimension of the dominance filter.
	FrontierAxis = frontier.Axis
)

var (
	// FrontierSweep enumerates the frontier at sampled α values with
	// warm-started solves, in parallel.
	FrontierSweep = frontier.Sweep
	// FrontierExact enumerates every breakpoint by warm-started
	// bisection.
	FrontierExact = frontier.Exact
	// FrontierFromPlan enumerates over a built plan's profiled models.
	FrontierFromPlan = core.FrontierFromPlan
	// NewFrontierService wraps a model source for HTTP serving; mount
	// it with MountFrontier on a telemetry mux.
	NewFrontierService = frontier.NewService
	// MountFrontier registers a frontier service at /frontier.
	MountFrontier = frontier.Mount
)

// Framework bundles a corpus and a cluster with sensible defaults.
type Framework struct {
	corpus Corpus
	clus   *Cluster
	// Alpha is the Het-Energy-Aware scalarization weight (default 0.995).
	Alpha float64
	// Scheme is the placement scheme (default Representative).
	Scheme Scheme
	// Stratifier overrides stratification knobs when K > 0.
	Stratifier strata.StratifierConfig
	// TraceOffset is the job start within the solar traces (seconds).
	TraceOffset float64
	// Normalized switches the modeler to 0–1-scaled objectives.
	Normalized bool
}

// New creates a Framework over a corpus and cluster.
func New(c Corpus, cl *Cluster) (*Framework, error) {
	if c == nil || c.Len() == 0 {
		return nil, errors.New("pareto: empty corpus")
	}
	if cl == nil || cl.P() == 0 {
		return nil, errors.New("pareto: empty cluster")
	}
	return &Framework{
		corpus: c,
		clus:   cl,
		Alpha:  0.995,
		Scheme: Representative,
	}, nil
}

// Corpus returns the framework's dataset.
func (f *Framework) Corpus() Corpus { return f.corpus }

// Cluster returns the framework's cluster model.
func (f *Framework) Cluster() *Cluster { return f.clus }

// Plan builds a partitioning plan under the given strategy. profile
// runs the actual workload on representative samples and may be nil
// only for the Stratified baseline.
func (f *Framework) Plan(s Strategy, profile ProfileFunc) (*Plan, error) {
	cfg := Config{
		Strategy:    s,
		Alpha:       f.Alpha,
		Scheme:      f.Scheme,
		Stratifier:  f.Stratifier,
		TraceOffset: f.TraceOffset,
		Normalized:  f.Normalized,
	}
	return core.BuildPlan(f.corpus, f.clus, profile, cfg)
}

// Execute runs the planned job: node j processes partition j via run.
func (f *Framework) Execute(plan *Plan, run RunPartition) (*Result, error) {
	return core.Execute(f.clus, plan, run, f.TraceOffset)
}

// PlaceTo ships the plan's partitions to a storage backend.
func (f *Framework) PlaceTo(plan *Plan, st Store) error {
	if plan == nil || plan.Assign == nil {
		return errors.New("pareto: nil plan")
	}
	return partitioner.Place(f.corpus, plan.Assign, st)
}
