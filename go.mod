module pareto

go 1.22
