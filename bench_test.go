package pareto

// This file regenerates every table and figure of the paper's
// evaluation (§V) as Go benchmarks — one per artifact, named after
// DESIGN.md's experiment index — plus the ablation benches for the
// design decisions DESIGN.md calls out. Each benchmark executes the
// full pipeline (stratify → profile → optimize → place → run) on the
// simulated heterogeneous cluster and reports the headline metrics
// (speedup and dirty-energy reduction versus the Stratified baseline)
// via b.ReportMetric, so `go test -bench=. -benchmem` prints the
// paper-shaped results alongside the usual ns/op.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pareto/internal/bench"
	"pareto/internal/core"
	"pareto/internal/datasets"
	"pareto/internal/kvstore"
	"pareto/internal/opt"
	"pareto/internal/sampling"
	"pareto/internal/strata"
	"pareto/internal/workloads/graphcomp"
	"pareto/internal/workloads/lz77"

	"pareto/internal/sketch"
)

// reportStrategyMetrics derives the paper's headline numbers from a
// row triple (Stratified, Het-Aware, Het-Energy-Aware) at the largest
// partition count and attaches them to the benchmark.
func reportStrategyMetrics(b *testing.B, rows []bench.StrategyRow) {
	b.Helper()
	maxP := 0
	for _, r := range rows {
		if r.Partitions > maxP {
			maxP = r.Partitions
		}
	}
	var base, het, hea *bench.StrategyRow
	for i := range rows {
		r := &rows[i]
		if r.Partitions != maxP {
			continue
		}
		switch r.Strategy {
		case core.Stratified:
			base = r
		case core.HetAware:
			het = r
		case core.HetEnergyAware:
			hea = r
		}
	}
	if base == nil || het == nil || hea == nil {
		b.Fatal("missing strategy rows")
	}
	b.ReportMetric(100*bench.Improvement(base.TimeSec, het.TimeSec), "hetaware-time-%")
	b.ReportMetric(100*bench.Improvement(base.TimeSec, hea.TimeSec), "energyaware-time-%")
	b.ReportMetric(100*bench.Improvement(base.DirtyJ, hea.DirtyJ), "energyaware-dirty-%")
}

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table1(bench.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Text) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2TreeMining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Fig2(bench.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		reportStrategyMetrics(b, rep.Rows)
	}
}

func BenchmarkFig3TextMining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Fig3(bench.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		reportStrategyMetrics(b, rep.Rows)
	}
}

func BenchmarkFig4GraphCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Fig4(bench.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		reportStrategyMetrics(b, rep.Rows)
		// Quality: the heterogeneity-aware ratio must track the baseline.
		b.ReportMetric(rep.Rows[len(rep.Rows)-1].Quality["compression-ratio"], "ratio")
	}
}

func BenchmarkTable2LZ77UK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table2(bench.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		reportStrategyMetrics(b, rep.Rows)
		b.ReportMetric(rep.Rows[0].Quality["compression-ratio"], "ratio")
	}
}

func BenchmarkTable3LZ77Arabic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table3(bench.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		reportStrategyMetrics(b, rep.Rows)
		b.ReportMetric(rep.Rows[0].Quality["compression-ratio"], "ratio")
	}
}

func BenchmarkFig5ParetoFrontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Fig5(bench.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		// Report the frontier span of the first workload: max dirty
		// reduction attainable along the sweep.
		first := rep.Frontier
		if len(first) == 0 {
			b.Fatal("empty frontier")
		}
		hi, lo := first[0].DirtyJ, first[0].DirtyJ
		for _, r := range first {
			if r.Baseline {
				continue
			}
			if r.DirtyJ > hi {
				hi = r.DirtyJ
			}
			if r.DirtyJ < lo {
				lo = r.DirtyJ
			}
		}
		b.ReportMetric(100*bench.Improvement(hi, lo), "frontier-dirty-span-%")
	}
}

func BenchmarkFig6SupportSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Fig6(bench.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Frontier) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// BenchmarkAblationPolyRegression compares linear vs degree-4 utility
// functions on noisy progressive samples (the §III-D argument for
// linear models): it reports each model's extrapolation error at 50×
// the largest sample.
func BenchmarkAblationPolyRegression(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	truth := func(x float64) float64 { return 0.004*x + 2 }
	for i := 0; i < b.N; i++ {
		var pts []sampling.Point
		for _, x := range []float64{500, 1000, 2000, 4000, 8000, 20000} {
			pts = append(pts, sampling.Point{X: x, Y: truth(x) * (1 + rng.NormFloat64()*0.05)})
		}
		lin, err := sampling.FitLinear(pts)
		if err != nil {
			b.Fatal(err)
		}
		pol, err := sampling.FitPoly(pts, 4)
		if err != nil {
			b.Fatal(err)
		}
		x := 1e6
		linErr := abs(lin.Predict(x)-truth(x)) / truth(x)
		polErr := abs(pol.Predict(x)-truth(x)) / truth(x)
		b.ReportMetric(100*linErr, "linear-extrap-err-%")
		b.ReportMetric(100*polErr, "poly4-extrap-err-%")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkAblationKModesL sweeps the composite center width L: larger
// L reduces the zero-match mismatch cost at modest extra compute.
func BenchmarkAblationKModesL(b *testing.B) {
	sketches := plantedSketchesForBench(800, 24, 8, 0.4)
	for _, l := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				res, err := strata.Cluster(sketches, strata.Config{K: 8, L: l, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(float64(cost), "mismatch-cost")
		})
	}
}

func plantedSketchesForBench(n, width, k int, noise float64) []sketch.Sketch {
	rng := rand.New(rand.NewSource(3))
	protos := make([]sketch.Sketch, k)
	for c := range protos {
		p := make(sketch.Sketch, width)
		for a := range p {
			p[a] = uint64(c*1_000_000 + rng.Intn(1000))
		}
		protos[c] = p
	}
	out := make([]sketch.Sketch, n)
	for i := range out {
		s := protos[i%k].Clone()
		for a := range s {
			if rng.Float64() < noise {
				s[a] = rng.Uint64()
			}
		}
		out[i] = s
	}
	return out
}

// BenchmarkAblationSimplexVsWaterfill compares the general LP against
// the α=1 analytic water-filling solver (they must agree; the LP costs
// more but handles every α).
func BenchmarkAblationSimplexVsWaterfill(b *testing.B) {
	nodes := make([]opt.NodeModel, 16)
	rng := rand.New(rand.NewSource(5))
	for i := range nodes {
		nodes[i] = opt.NodeModel{
			Time:      sampling.LinearFit{Slope: 0.0001 + rng.Float64()*0.001, Intercept: rng.Float64()},
			DirtyRate: rng.Float64() * 400,
		}
	}
	b.Run("simplex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := opt.Optimize(nodes, 1_000_000, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("waterfill", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := opt.WaterFill(nodes, 1_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPipelineWidth measures kvstore write throughput at
// increasing pipeline widths (§IV: batching "substantially improves
// response times").
func BenchmarkAblationPipelineWidth(b *testing.B) {
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	val := make([]byte, 128)
	for _, width := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			c, err := kvstore.Dial(addr, time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			p, err := c.NewPipeline(width)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(val)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Send("SET", []byte("k"), val); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := p.Finish(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationPlacementScheme contrasts representative and
// similar-together placement on the compression workload: similarity
// placement must win on compressed size (the reason §III-E offers
// both).
func BenchmarkAblationPlacementScheme(b *testing.B) {
	cfg := datasets.UKLike(0.0003)
	g, _, err := datasets.GenerateGraph(cfg)
	if err != nil {
		b.Fatal(err)
	}
	corpus, err := NewGraphCorpus(g)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := PaperCluster(8, DefaultPanel(), 172, 48)
	if err != nil {
		b.Fatal(err)
	}
	for _, scheme := range []Scheme{Representative, SimilarTogether} {
		b.Run(scheme.String(), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				w := &bench.GraphCompression{Graph: corpus, Window: 7}
				cfg := core.Config{Strategy: core.Stratified, Scheme: scheme}
				plan, err := core.BuildPlan(corpus, cl, w.Profile, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_, quality, err := w.Run(cl, plan.Assign, 0)
				if err != nil {
					b.Fatal(err)
				}
				ratio = quality["compression-ratio"]
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkAblationResidualCode compares γ against webgraph's ζ₃ for
// residual gaps on a web-like graph (Boldi & Vigna's reason to default
// to ζ).
func BenchmarkAblationResidualCode(b *testing.B) {
	g, _, err := datasets.GenerateGraph(datasets.UKLike(0.0004))
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]uint32, len(g.Adj))
	for i := range ids {
		ids[i] = uint32(i)
	}
	for _, cfg := range []struct {
		name string
		c    graphcomp.Config
	}{
		{"gamma", graphcomp.Config{Window: 7}},
		{"zeta3", graphcomp.Config{Window: 7, Residuals: graphcomp.ZetaCode}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				enc, err := graphcomp.Encode(ids, g.Adj, cfg.c)
				if err != nil {
					b.Fatal(err)
				}
				ratio = graphcomp.Ratio(graphcomp.RawBits(ids, g.Adj), enc.CompressedBits())
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkAblationExactFrontier compares the sampled α sweep against
// exact frontier vertex enumeration.
func BenchmarkAblationExactFrontier(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	nodes := make([]opt.NodeModel, 8)
	for i := range nodes {
		nodes[i] = opt.NodeModel{
			Time:      sampling.LinearFit{Slope: 0.0001 + rng.Float64()*0.001, Intercept: rng.Float64()},
			DirtyRate: rng.Float64() * 400,
		}
	}
	b.Run("sampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := opt.Frontier(nodes, 1_000_000, opt.DefaultAlphaSweep())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(pts)), "points")
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := opt.ExactFrontier(nodes, 1_000_000, 1e-6)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(pts)), "points")
		}
	})
}

// BenchmarkAblationWorkStealing contrasts the framework's Het-Aware
// partitioning with the idealized work-stealing strawman of §I on
// partitioned text mining: stealing balances machine load but its
// payload-oblivious fragmentation inflates the candidate space.
func BenchmarkAblationWorkStealing(b *testing.B) {
	cfg := datasets.RCV1Like(0.0008)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		b.Fatal(err)
	}
	corpus, err := NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		b.Fatal(err)
	}
	w := &bench.TextMining{Docs: corpus, SupportFrac: 0.15, MaxLen: 2}
	cl, err := PaperCluster(8, DefaultPanel(), 172, 48)
	if err != nil {
		b.Fatal(err)
	}
	o := bench.DefaultOptions()
	for i := 0; i < b.N; i++ {
		het, err := bench.RunStrategy(w, cl, core.Config{
			Strategy: core.HetAware, Scheme: w.Scheme(),
			TraceOffset: o.TraceOffset, MinPartitionFrac: o.MinPartitionFrac,
		}, o.TraceOffset)
		if err != nil {
			b.Fatal(err)
		}
		steal, err := bench.RunWorkStealingMining(w, cl, 2, o.TraceOffset)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(het.Quality["candidates"], "hetaware-candidates")
		b.ReportMetric(float64(steal.Candidates), "stealing-candidates")
		b.ReportMetric(100*bench.Improvement(steal.TimeSec, het.TimeSec), "hetaware-vs-stealing-time-%")
	}
}

// BenchmarkAblationLZ77Window sweeps the LZ77 window size on
// structured record data.
func BenchmarkAblationLZ77Window(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var data []byte
	for i := 0; i < 5000; i++ {
		data = append(data, []byte("record-header-v1|")...)
		data = append(data, byte(rng.Intn(64)))
	}
	for _, window := range []int{1 << 8, 1 << 12, 1 << 15} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var ratio float64
			for i := 0; i < b.N; i++ {
				enc, err := lz77.Compress(data, lz77.Config{WindowSize: window})
				if err != nil {
					b.Fatal(err)
				}
				ratio = enc.Ratio()
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}
