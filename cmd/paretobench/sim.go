package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"pareto/internal/sim"
)

// simOpts carries the -sim-* flag values.
type simOpts struct {
	nodes     int
	policy    string
	arrivals  string
	rate      float64
	duration  float64
	cost      float64
	offset    float64
	seed      int64
	trace     string
	decisions string
}

// runSim simulates a paper-shaped cluster under the requested workload
// and policy, printing per-node and aggregate results plus the
// sustained event rate. With -sim-trace the workload is replayed from
// a recorded JSONL file instead of generated; with -sim-decisions the
// per-decision trace is written out for counterfactual analysis.
func runSim(opts simOpts) error {
	// Size the solar traces to cover the run window with a day of slack.
	hours := int((opts.offset+opts.duration)/3600) + 48
	nodes, rate, err := sim.PaperNodes(opts.nodes, 172, hours)
	if err != nil {
		return err
	}
	var tasks []sim.Task
	source := ""
	if opts.trace != "" {
		f, err := os.Open(opts.trace)
		if err != nil {
			return err
		}
		tasks, err = sim.ReadTasks(f)
		f.Close()
		if err != nil {
			return err
		}
		source = fmt.Sprintf("trace %s", opts.trace)
	} else {
		tasks, err = sim.Generate(sim.GenConfig{
			Process:    opts.arrivals,
			Rate:       opts.rate,
			Duration:   opts.duration,
			CostMean:   opts.cost,
			CostSpread: 0.5,
			Seed:       opts.seed,
		})
		if err != nil {
			return err
		}
		source = fmt.Sprintf("%s arrivals, %.4g/s for %.4gs, seed %d", opts.arrivals, opts.rate, opts.duration, opts.seed)
	}
	policy, err := sim.PolicyByName(opts.policy)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := sim.Run(sim.Config{
		Nodes:           nodes,
		CostRate:        rate,
		Offset:          opts.offset,
		Policy:          policy,
		RecordDecisions: opts.decisions != "",
	}, tasks)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("=== sim (%d nodes, %s, %s) ===\n", opts.nodes, opts.policy, source)
	const wh = 1.0 / 3600
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "node\ttasks\tbusy s\tgreen Wh\tdirty Wh\t")
	for i := range nodes {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t\n",
			nodes[i].Name, res.NodeTasks[i], res.NodeTimes[i],
			res.NodeGreen[i]*wh, res.NodeDirty[i]*wh)
	}
	tw.Flush()
	fmt.Printf("makespan %.3f s · imbalance %.3f · green %.1f Wh · dirty %.1f Wh\n",
		res.Makespan, res.Imbalance(), res.GreenEnergy*wh, res.DirtyEnergy*wh)
	fmt.Printf("wait mean %.4f s · p50 %.4f s · p99 %.4f s · max %.4f s\n",
		res.MeanWaitSec, res.Wait.Quantile(0.5)/1e6, res.Wait.Quantile(0.99)/1e6, res.MaxWaitSec)
	fmt.Printf("%d tasks · %d events · %.1f ms wall · %.3g events/s\n",
		res.Tasks, res.Events, float64(elapsed.Microseconds())/1000,
		float64(res.Events)/elapsed.Seconds())

	if opts.decisions != "" {
		out := os.Stdout
		if opts.decisions != "-" {
			f, err := os.Create(opts.decisions)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := sim.WriteDecisions(out, res.Decisions); err != nil {
			return err
		}
		if opts.decisions != "-" {
			fmt.Printf("wrote %d decisions to %s\n", len(res.Decisions), opts.decisions)
		}
	}
	return nil
}
