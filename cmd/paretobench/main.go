// Command paretobench regenerates the paper's tables and figures.
//
// Usage:
//
//	paretobench -list
//	paretobench -exp fig3            # one artifact at the small scale
//	paretobench -exp all -scale paper
//
// Each experiment prints an aligned text table with one row per
// (strategy, partition count) or per α point; see DESIGN.md §4 for the
// artifact index and EXPERIMENTS.md for recorded runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pareto/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (table1, fig2, fig3, fig4, table2, table3, fig5, fig6, all)")
		scale = flag.String("scale", "small", "dataset scale: small | paper")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	var s bench.Scale
	switch *scale {
	case "small":
		s = bench.SmallScale()
	case "paper":
		s = bench.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "paretobench: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.RunExperiment(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paretobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s, %.1fs) ===\n%s\n", rep.ID, rep.Title, time.Since(start).Seconds(), rep.Text)
	}
}
