// Command paretobench regenerates the paper's tables and figures.
//
// Usage:
//
//	paretobench -list
//	paretobench -exp fig3            # one artifact at the small scale
//	paretobench -exp all -scale paper
//	paretobench -exp fig3 -snapshot telemetry.json
//	paretobench -frontier -frontier-nodes 64 -frontier-alphas 41
//	paretobench -frontier -frontier-exact -serve :8080
//	paretobench -sim -sim-nodes 64 -sim-policy greedy-stealing -sim-rate 200
//	paretobench -sim -sim-trace workload.jsonl -sim-decisions decisions.jsonl
//	paretobench -replan -replan-records 50000 -replan-cycles 8
//
// Each experiment prints an aligned text table with one row per
// (strategy, partition count) or per α point; see DESIGN.md §4 for the
// artifact index and EXPERIMENTS.md for recorded runs. With -snapshot
// the run is instrumented and the final telemetry snapshot — plan-stage
// spans, per-node busy time and green/dirty energy gauges — is written
// to the given file as JSON ("-" for stdout).
//
// -frontier switches to the warm-started frontier enumerator: it
// prints the dominance-filtered Pareto frontier over a paper-shaped
// cluster of -frontier-nodes nodes, with warm/cold solve statistics.
// With -serve the same enumeration is also exported over HTTP at
// /frontier alongside the telemetry endpoints.
//
// -sim switches to the discrete-event cluster simulator: a virtual
// paper-shaped cluster of -sim-nodes nodes serves a seeded synthetic
// workload (-sim-arrivals/-sim-rate/-sim-duration/-sim-seed) or a
// recorded JSONL trace (-sim-trace) under the -sim-policy scheduling
// policy, reporting per-node busy time and green/dirty energy,
// queueing-delay quantiles, and the sustained events/sec. -sim-decisions
// records every routing decision for counterfactual comparison.
//
// -replan switches to the incremental online replanning loop: a seeded
// topic-blocked corpus is planned cold, then each round ingests a
// drifting batch and runs one control cycle — printing whether the loop
// stayed clean, re-stratified incrementally (warm-starting the sizing
// LP from the previous basis), or fell back to a full replan, plus the
// migration move budget spent. A final cold full replan over the
// drifted corpus anchors the incremental cycle times.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"pareto/internal/bench"
	"pareto/internal/frontier"
	"pareto/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1, fig2, fig3, fig4, table2, table3, fig5, fig6, all)")
		scale    = flag.String("scale", "small", "dataset scale: small | paper")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		snapshot = flag.String("snapshot", "", "write the final telemetry snapshot as JSON to this file (\"-\" = stdout)")

		frontierMode = flag.Bool("frontier", false, "enumerate the time/energy Pareto frontier instead of running experiments")
		fNodes       = flag.Int("frontier-nodes", 64, "frontier: number of paper-shaped nodes")
		fAlphas      = flag.Int("frontier-alphas", 41, "frontier: α samples for the sweep")
		fExact       = flag.Bool("frontier-exact", false, "frontier: exact breakpoint bisection instead of α sampling")
		fTotal       = flag.Int("frontier-total", 1_000_000, "frontier: total data units to partition")
		serve        = flag.String("serve", "", "serve /frontier and telemetry on this address (e.g. :8080) after printing")

		simMode       = flag.Bool("sim", false, "run the discrete-event cluster simulator instead of experiments")
		simNodes      = flag.Int("sim-nodes", 16, "sim: number of paper-shaped nodes")
		simPolicy     = flag.String("sim-policy", "greedy-stealing", "sim: scheduling policy (round-robin, least-loaded, weighted-scoring, greedy-stealing)")
		simArrivals   = flag.String("sim-arrivals", "poisson", "sim: arrival process (poisson, uniform, bursty)")
		simRate       = flag.Float64("sim-rate", 100, "sim: mean arrival rate, tasks per virtual second")
		simDuration   = flag.Float64("sim-duration", 600, "sim: arrival window, virtual seconds")
		simCost       = flag.Float64("sim-cost", 2e5, "sim: mean abstract cost per task")
		simOffset     = flag.Float64("sim-offset", 0, "sim: start offset into the solar traces, seconds")
		simSeed       = flag.Int64("sim-seed", 1, "sim: workload generator seed")
		simTrace      = flag.String("sim-trace", "", "sim: replay a recorded JSONL task trace instead of generating")
		simDecisions  = flag.String("sim-decisions", "", "sim: write the per-decision trace to this JSONL file (\"-\" = stdout)")

		replanMode      = flag.Bool("replan", false, "drive the incremental online replanning loop instead of experiments")
		replanRecords   = flag.Int("replan-records", 50_000, "replan: seed corpus size in records")
		replanTopics    = flag.Int("replan-topics", 32, "replan: planted topics (= strata)")
		replanNodes     = flag.Int("replan-nodes", 4, "replan: number of paper-shaped nodes")
		replanCycles    = flag.Int("replan-cycles", 8, "replan: drift/replan rounds to run")
		replanBatch     = flag.Int("replan-batch", 100, "replan: records ingested per round")
		replanThreshold = flag.Float64("replan-threshold", 5e-5, "replan: per-stratum drift threshold (0 forces full replans)")
		replanBudget    = flag.Int("replan-budget", 2000, "replan: max migration moves per cycle (0 = unbounded)")
	)
	flag.Parse()
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if *frontierMode {
		if err := runFrontier(*fNodes, *fTotal, *fAlphas, *fExact, *serve); err != nil {
			fmt.Fprintf(os.Stderr, "paretobench: frontier: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *simMode {
		err := runSim(simOpts{
			nodes:     *simNodes,
			policy:    *simPolicy,
			arrivals:  *simArrivals,
			rate:      *simRate,
			duration:  *simDuration,
			cost:      *simCost,
			offset:    *simOffset,
			seed:      *simSeed,
			trace:     *simTrace,
			decisions: *simDecisions,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "paretobench: sim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *replanMode {
		err := runReplan(replanOpts{
			records:   *replanRecords,
			topics:    *replanTopics,
			nodes:     *replanNodes,
			cycles:    *replanCycles,
			batch:     *replanBatch,
			threshold: *replanThreshold,
			budget:    *replanBudget,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "paretobench: replan: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var s bench.Scale
	switch *scale {
	case "small":
		s = bench.SmallScale()
	case "paper":
		s = bench.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "paretobench: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	var reg *telemetry.Registry
	if *snapshot != "" {
		reg = telemetry.NewRegistry()
		s.Telemetry = reg
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.RunExperiment(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paretobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s, %.1fs) ===\n%s\n", rep.ID, rep.Title, time.Since(start).Seconds(), rep.Text)
	}
	if reg != nil {
		if err := writeSnapshot(reg, *snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "paretobench: snapshot: %v\n", err)
			os.Exit(1)
		}
	}
}

// runFrontier enumerates and prints the Pareto frontier for a
// paper-shaped cluster, then optionally serves it over HTTP.
func runFrontier(nodes, total, alphas int, exact bool, addr string) error {
	models := frontier.PaperModels(nodes)
	reg := telemetry.NewRegistry()
	cfg := frontier.Config{Alphas: frontier.UniformAlphas(alphas), Telemetry: reg}

	start := time.Now()
	var (
		res *frontier.Result
		err error
	)
	if exact {
		res, err = frontier.Exact(models, total, cfg)
	} else {
		res, err = frontier.Sweep(models, total, cfg)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	mode := "sweep"
	if exact {
		mode = "exact bisection"
	}
	fmt.Printf("=== frontier (%s, %d nodes, %d units) ===\n", mode, nodes, total)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "α\tmakespan s\tdirty J\twarm\tpivots\t")
	for _, p := range res.Frontier() {
		warm := "cold"
		if p.Warm {
			warm = "warm"
		}
		fmt.Fprintf(tw, "%.6g\t%.4f\t%.1f\t%s\t%d\t\n", p.Alpha, p.Makespan, p.DirtyEnergy, warm, p.Pivots)
	}
	tw.Flush()
	st := res.Stats
	fmt.Printf("%d points (%d dominated pruned) · %d solves (%d warm) · %d pivots (%d warm) · %.1f ms\n",
		len(res.Frontier()), st.Dominated, st.Solves, st.WarmSolves, st.Pivots, st.WarmPivots,
		float64(elapsed.Microseconds())/1000)

	if addr != "" {
		mux := reg.Handler()
		frontier.Mount(mux, frontier.NewService(
			frontier.StaticSource{Nodes: models, Total: total},
			frontier.Config{Telemetry: reg},
		))
		fmt.Printf("serving /frontier and /metrics on %s\n", addr)
		return http.ListenAndServe(addr, mux)
	}
	return nil
}

// writeSnapshot dumps the run's accumulated telemetry as JSON.
func writeSnapshot(reg *telemetry.Registry, path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return reg.Snapshot().WriteJSON(w)
}
