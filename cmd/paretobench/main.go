// Command paretobench regenerates the paper's tables and figures.
//
// Usage:
//
//	paretobench -list
//	paretobench -exp fig3            # one artifact at the small scale
//	paretobench -exp all -scale paper
//	paretobench -exp fig3 -snapshot telemetry.json
//
// Each experiment prints an aligned text table with one row per
// (strategy, partition count) or per α point; see DESIGN.md §4 for the
// artifact index and EXPERIMENTS.md for recorded runs. With -snapshot
// the run is instrumented and the final telemetry snapshot — plan-stage
// spans, per-node busy time and green/dirty energy gauges — is written
// to the given file as JSON ("-" for stdout).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pareto/internal/bench"
	"pareto/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1, fig2, fig3, fig4, table2, table3, fig5, fig6, all)")
		scale    = flag.String("scale", "small", "dataset scale: small | paper")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		snapshot = flag.String("snapshot", "", "write the final telemetry snapshot as JSON to this file (\"-\" = stdout)")
	)
	flag.Parse()
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	var s bench.Scale
	switch *scale {
	case "small":
		s = bench.SmallScale()
	case "paper":
		s = bench.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "paretobench: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	var reg *telemetry.Registry
	if *snapshot != "" {
		reg = telemetry.NewRegistry()
		s.Telemetry = reg
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.RunExperiment(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paretobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s, %.1fs) ===\n%s\n", rep.ID, rep.Title, time.Since(start).Seconds(), rep.Text)
	}
	if reg != nil {
		if err := writeSnapshot(reg, *snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "paretobench: snapshot: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeSnapshot dumps the run's accumulated telemetry as JSON.
func writeSnapshot(reg *telemetry.Registry, path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return reg.Snapshot().WriteJSON(w)
}
