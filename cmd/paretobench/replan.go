package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/energy"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/replan"
	"pareto/internal/sketch"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// replanOpts carries the -replan-* flag values.
type replanOpts struct {
	records   int
	topics    int
	nodes     int
	cycles    int
	batch     int
	threshold float64
	budget    int
}

// replanCorpus builds the deterministic topic-blocked text corpus the
// driver drifts against: doc i belongs to topic i%topics and draws 12
// terms from a sliding window in that topic's vocabulary block, so
// k-modes recovers the topics as strata.
func replanCorpus(n, topics int) (*pivots.TextCorpus, error) {
	const window, terms = 64, 12
	docs := make([]pivots.Doc, n)
	for i := range docs {
		topic := i % topics
		t := make([]uint32, terms)
		for k := range t {
			t[k] = uint32(topic*window + (i/topics+k)%window)
		}
		sort.Slice(t, func(a, b int) bool { return t[a] < t[b] })
		docs[i] = pivots.Doc{Terms: t}
	}
	return pivots.NewTextCorpus(docs, topics*window)
}

// driftItems builds a pivot set disjoint from every planted topic;
// identical sets land in one stratum and drift only it.
func driftItems(gen int) []sketch.Item {
	items := make([]sketch.Item, 6)
	for i := range items {
		items[i] = sketch.Item(uint64(1)<<40 + uint64(gen)<<20 + uint64(i))
	}
	return items
}

// runReplan drives the incremental replanning loop: a seeded corpus is
// planned cold, then -replan-cycles rounds each ingest a drifting batch
// and run one Cycle, printing what the loop decided (clean, incremental
// re-stratification, or full replan) and what it cost. A final cold
// core.BuildPlan over the drifted corpus anchors the incremental cycle
// times against the full-replan baseline.
func runReplan(opts replanOpts) error {
	base, err := replanCorpus(opts.records, opts.topics)
	if err != nil {
		return err
	}
	cl, err := cluster.PaperCluster(opts.nodes, energy.DefaultPanel(), 172, 48)
	if err != nil {
		return err
	}
	profile := func(indices []int) (float64, error) {
		return 50_000 + 2_000*float64(len(indices)), nil
	}
	cfg := core.Config{
		Strategy: core.HetEnergyAware,
		Alpha:    0.999,
		Scheme:   partitioner.Representative,
		Stratifier: strata.StratifierConfig{
			SketchWidth: 24,
			Cluster:     strata.Config{K: opts.topics, L: 3, Seed: 7},
			Seed:        5,
		},
		SampleSeed: 3,
	}
	reg := telemetry.NewRegistry()
	start := time.Now()
	l, err := replan.New(base, cl, profile, replan.Config{
		Core:             cfg,
		Drift:            strata.DriftConfig{Threshold: opts.threshold},
		MaxMovesPerCycle: opts.budget,
		Store:            partitioner.NewMemoryStore(),
		Telemetry:        reg,
	})
	if err != nil {
		return err
	}
	coldPlan := time.Since(start)
	fmt.Printf("corpus %d records, %d topics, cluster of %d nodes; cold plan + initial placement %v\n\n",
		opts.records, opts.topics, opts.nodes, coldPlan.Round(time.Millisecond))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cycle\tkind\tdirty\tlp\tprofile runs\tcache hits\tplaced\tmoved\tdeferred\telapsed")
	var incTotal time.Duration
	var incCycles int
	for c := 1; c <= opts.cycles; c++ {
		for i := 0; i < opts.batch; i++ {
			if _, err := l.Ingest(driftItems(c), 6, nil); err != nil {
				return err
			}
		}
		rep, err := l.Cycle()
		if err != nil {
			return err
		}
		lp := "-"
		if rep.LPSolved {
			lp = "cold"
			if rep.LPWarm {
				lp = "warm"
			}
		}
		fmt.Fprintf(w, "%d\t%s\t%d/%d\t%s\t%d\t%d\t%d\t%d\t%d\t%v\n",
			c, rep.Kind, len(rep.Dirty), l.Tracker().K(), lp,
			rep.ProfileRuns, rep.ProfileCacheHits, rep.Placements,
			rep.MovesApplied, rep.MovesDeferred, rep.Elapsed.Round(time.Microsecond))
		if rep.Kind == replan.CycleIncremental {
			incTotal += rep.Elapsed
			incCycles++
		}
	}
	w.Flush()

	// Drain any moves the budget deferred.
	for drained := 0; ; drained++ {
		if drained > 1000 {
			return fmt.Errorf("migration did not converge after %d drain cycles", drained)
		}
		rep, err := l.Cycle()
		if err != nil {
			return err
		}
		if rep.Converged && l.Pending() == 0 {
			break
		}
	}

	start = time.Now()
	if _, err := core.BuildPlan(l.Corpus(), cl, profile, cfg); err != nil {
		return err
	}
	fullReplan := time.Since(start)
	fmt.Printf("\nfull cold replan over final corpus (%d records): %v\n", l.Len(), fullReplan.Round(time.Millisecond))
	if incCycles > 0 {
		mean := incTotal / time.Duration(incCycles)
		fmt.Printf("mean incremental cycle: %v  (%.1fx faster than full replan)\n",
			mean.Round(time.Microsecond), float64(fullReplan)/float64(mean))
	}
	snap := reg.Snapshot()
	fmt.Printf("telemetry: cycles=%d incremental=%d full=%d clean=%d lp_warm=%d lp_cold=%d moves_applied=%d moves_deferred=%d aborts=%d\n",
		snap.Counters["replan_cycles_total"],
		snap.Counters["replan_cycles_incremental_total"],
		snap.Counters["replan_cycles_full_total"],
		snap.Counters["replan_cycles_clean_total"],
		snap.Counters["replan_lp_warm_total"],
		snap.Counters["replan_lp_cold_total"],
		snap.Counters["replan_moves_applied_total"],
		snap.Counters["replan_moves_deferred_total"],
		snap.Counters["replan_migration_aborts_total"])
	return nil
}
