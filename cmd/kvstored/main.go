// Command kvstored runs one instance of the framework's
// Redis-compatible key-value store (paper §IV deploys one store per
// cluster node). It speaks the RESP protocol, so both this module's
// client and standard Redis clients can talk to it.
//
// Usage:
//
//	kvstored -addr 127.0.0.1:6379
//	kvstored -addr 127.0.0.1:6379 -listeners 4 -shards 64
//	kvstored -addr 127.0.0.1:6379 -snapshot s.pkvs -aof s.aof -aof-sync 2ms
//	kvstored -addr 127.0.0.1:7001 -cluster-slots 0-511@127.0.0.1:7001,512-1023@127.0.0.1:7002
//	kvstored -addr 127.0.0.1:6379 -metrics-addr 127.0.0.1:9100
//	kvstored -addr 127.0.0.1:6381 -aof r.aof -replica-of 127.0.0.1:6380
//	kvstored -addr 127.0.0.1:6380 -aof p.aof -min-ack-replicas 1
//
// With -metrics-addr the server also exposes its telemetry over HTTP:
// Prometheus text at /metrics, a JSON snapshot at /debug/vars. The
// same snapshot is available in-band via the INFO command.
//
// -cluster-slots assigns the full cluster's slot map (every node gets
// the same spec); this node serves the ranges whose address equals
// -cluster-self (default: -addr) and answers MOVED for the rest.
//
// -replica-of starts the process as a read-only replica streaming from
// the given primary (which must run with -aof); REPLICAOF NO ONE or
// REPLTAKEOVER over the wire promotes it back to primary at runtime.
// -min-ack-replicas makes a primary semi-synchronous: each write is
// acknowledged only after that many replicas confirm it applied.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pareto/internal/kvstore"
	"pareto/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	listeners := flag.Int("listeners", 1, "accept loops (SO_REUSEPORT listeners where supported)")
	shards := flag.Int("shards", 0, "engine shard count, rounded up to a power of two (0 = scale with GOMAXPROCS)")
	snapshot := flag.String("snapshot", "", "snapshot file: loaded at start, written by SAVE/BGREWRITEAOF and on shutdown")
	aof := flag.String("aof", "", "append-only command log: replayed after the snapshot at start, group-commit fsynced at runtime")
	aofSync := flag.Duration("aof-sync", kvstore.DefaultAOFSyncWindow, "group-commit sync window (one fsync per window under load)")
	clusterSlots := flag.String("cluster-slots", "", `cluster slot map, e.g. "0-511@host:p1,512-1023@host:p2" (empty = standalone)`)
	clusterSelf := flag.String("cluster-self", "", "this node's advertised address in the slot map (default: -addr)")
	metricsAddr := flag.String("metrics-addr", "", "expose telemetry over HTTP on this address (empty = disabled)")
	replicaOf := flag.String("replica-of", "", "start as a read-only replica of this primary address (empty = primary)")
	minAckReplicas := flag.Int("min-ack-replicas", 0, "semi-sync replication: acks each write only after this many replicas applied it (0 = async)")
	ackTimeout := flag.Duration("repl-ack-timeout", 0, "semi-sync ack wait bound; the write's connection fails on expiry (0 = 2s)")
	flag.Parse()
	srv := kvstore.NewServer(kvstore.NewEngineShards(*shards))
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)
	if *snapshot != "" {
		if err := srv.EnableSnapshot(*snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: loading snapshot: %v\n", err)
			os.Exit(1)
		}
	}
	if *aof != "" {
		if err := srv.EnableAOF(*aof, *aofSync); err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: opening aof: %v\n", err)
			os.Exit(1)
		}
	}
	if *clusterSlots != "" {
		ranges, err := kvstore.ParseSlotRanges(*clusterSlots)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: %v\n", err)
			os.Exit(1)
		}
		self := *clusterSelf
		if self == "" {
			self = *addr
		}
		if err := srv.SetClusterSlots(self, ranges); err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: %v\n", err)
			os.Exit(1)
		}
	}
	if *minAckReplicas > 0 {
		srv.SetReplication(kvstore.ReplicationConfig{
			MinAckReplicas: *minAckReplicas,
			AckTimeout:     *ackTimeout,
		})
	}
	var metricsSrv *telemetry.HTTPServer
	if *metricsAddr != "" {
		var err error
		metricsSrv, err = reg.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kvstored metrics on http://%s/metrics\n", metricsSrv.Addr)
	}
	bound, err := srv.ListenN(*addr, *listeners)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvstored: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("kvstored listening on %s (%d accept loops, %d engine shards)\n",
		bound, *listeners, srv.Engine().NumShards())
	if *replicaOf != "" {
		// The advertised address is what a failover can promote; prefer
		// the cluster identity, fall back to the bound address.
		self := *clusterSelf
		if self == "" {
			self = bound
		}
		if err := srv.StartReplicaOf(*replicaOf, kvstore.ReplicaOptions{SelfAddr: self}); err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: replica-of: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kvstored replicating from %s (read-only)\n", *replicaOf)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("kvstored: shutting down")
	if metricsSrv != nil {
		if err := metricsSrv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: metrics close: %v\n", err)
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "kvstored: close: %v\n", err)
		os.Exit(1)
	}
}
