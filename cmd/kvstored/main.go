// Command kvstored runs one instance of the framework's
// Redis-compatible key-value store (paper §IV deploys one store per
// cluster node). It speaks the RESP protocol, so both this module's
// client and standard Redis clients can talk to it.
//
// Usage:
//
//	kvstored -addr 127.0.0.1:6379
//	kvstored -addr 127.0.0.1:6379 -metrics-addr 127.0.0.1:9100
//
// With -metrics-addr the server also exposes its telemetry over HTTP:
// Prometheus text at /metrics, a JSON snapshot at /debug/vars. The
// same snapshot is available in-band via the INFO command.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pareto/internal/kvstore"
	"pareto/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file: loaded at start, written by SAVE and on shutdown")
	metricsAddr := flag.String("metrics-addr", "", "expose telemetry over HTTP on this address (empty = disabled)")
	flag.Parse()
	srv := kvstore.NewServer(nil)
	if *snapshot != "" {
		if err := srv.EnableSnapshot(*snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: loading snapshot: %v\n", err)
			os.Exit(1)
		}
	}
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)
	var metricsSrv *telemetry.HTTPServer
	if *metricsAddr != "" {
		var err error
		metricsSrv, err = reg.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kvstored metrics on http://%s/metrics\n", metricsSrv.Addr)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvstored: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("kvstored listening on %s\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("kvstored: shutting down")
	if metricsSrv != nil {
		if err := metricsSrv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "kvstored: metrics close: %v\n", err)
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "kvstored: close: %v\n", err)
		os.Exit(1)
	}
}
