// Command partition runs the full pipeline on a dataset file produced
// by datagen: stratify, profile the chosen workload with progressive
// samples, solve the Pareto LP for the chosen strategy, and place the
// partitions onto disk or onto running kvstored instances.
//
// Usage:
//
//	partition -in data/rcv1.docs -kind text -strategy het-aware -p 8 -outdir parts/
//	partition -in data/uk.graph -kind graph -strategy het-energy-aware -alpha 0.99 \
//	          -kv 127.0.0.1:6380,127.0.0.1:6381
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pareto"
	"pareto/internal/datasets"
	"pareto/internal/kvstore"
	"pareto/internal/pivots"
	"pareto/internal/workloads/apriori"
	"pareto/internal/workloads/graphcomp"
	"pareto/internal/workloads/treemine"
)

func main() {
	var (
		in       = flag.String("in", "", "input dataset file")
		format   = flag.String("format", "binary", "input format: binary (datagen), edgelist (SNAP/LAW), transactions (FIMI)")
		kind     = flag.String("kind", "", "record kind: tree | graph | text (implied by -format for edgelist/transactions)")
		strategy = flag.String("strategy", "het-aware", "stratified | het-aware | het-energy-aware")
		alpha    = flag.Float64("alpha", 0.995, "scalarization weight for het-energy-aware")
		p        = flag.Int("p", 8, "number of partitions / nodes")
		scheme   = flag.String("scheme", "", "placement: representative | similar (default per kind)")
		outdir   = flag.String("outdir", "", "place partitions as files under this directory")
		kvAddrs  = flag.String("kv", "", "comma-separated kvstored addresses to place onto")
		support  = flag.Float64("support", 0.1, "mining support fraction used for profiling")
		offset   = flag.Float64("trace-offset", 12*3600, "job start within solar traces (s)")
		planOut  = flag.String("plan-out", "", "write the plan summary as JSON to this file")
	)
	flag.Parse()
	switch *format {
	case "edgelist":
		*kind = "graph"
	case "transactions":
		*kind = "text"
	}
	if *in == "" || *kind == "" {
		flag.Usage()
		os.Exit(2)
	}
	buf, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	corpus, profile, err := loadCorpusFormat(*format, *kind, buf, *support)
	if err != nil {
		fail(err)
	}
	cl, err := pareto.PaperCluster(*p, pareto.DefaultPanel(), 172, 72)
	if err != nil {
		fail(err)
	}
	fw, err := pareto.New(corpus, cl)
	if err != nil {
		fail(err)
	}
	fw.Alpha = *alpha
	fw.TraceOffset = *offset
	switch *scheme {
	case "representative":
		fw.Scheme = pareto.Representative
	case "similar":
		fw.Scheme = pareto.SimilarTogether
	case "":
		if *kind == "graph" {
			fw.Scheme = pareto.SimilarTogether
		}
	default:
		fail(fmt.Errorf("unknown scheme %q", *scheme))
	}

	var strat pareto.Strategy
	switch *strategy {
	case "stratified":
		strat = pareto.Stratified
		profile = nil
	case "het-aware":
		strat = pareto.HetAware
	case "het-energy-aware":
		strat = pareto.HetEnergyAware
	default:
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	start := time.Now()
	plan, err := fw.Plan(strat, profile)
	if err != nil {
		fail(err)
	}
	fmt.Printf("planned %d records into %d partitions in %.2fs (strategy %v, scheme %v)\n",
		corpus.Len(), *p, time.Since(start).Seconds(), plan.Strategy, plan.Scheme)
	fmt.Printf("partition sizes: %v\n", plan.Assign.Sizes())
	if plan.Optimized != nil {
		fmt.Printf("predicted makespan %.3fs, predicted dirty energy %.1f J\n",
			plan.Optimized.Makespan, plan.Optimized.DirtyEnergy)
	}
	if *planOut != "" {
		sum, err := plan.Summary()
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*planOut)
		if err != nil {
			fail(err)
		}
		if err := sum.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("plan summary written to %s\n", *planOut)
	}

	switch {
	case *outdir != "":
		st, err := pareto.NewDiskStore(*outdir)
		if err != nil {
			fail(err)
		}
		if err := fw.PlaceTo(plan, st); err != nil {
			fail(err)
		}
		fmt.Printf("placed partitions under %s\n", *outdir)
	case *kvAddrs != "":
		var clients []*kvstore.Client
		for _, addr := range strings.Split(*kvAddrs, ",") {
			c, err := kvstore.Dial(strings.TrimSpace(addr), 5*time.Second)
			if err != nil {
				fail(err)
			}
			defer c.Close()
			clients = append(clients, c)
		}
		st, err := pareto.NewKVStore(clients, 128, "pareto")
		if err != nil {
			fail(err)
		}
		if err := fw.PlaceTo(plan, st); err != nil {
			fail(err)
		}
		fmt.Printf("placed partitions onto %d store instance(s)\n", len(clients))
	default:
		fmt.Println("dry run (no -outdir or -kv given)")
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "partition: %v\n", err)
	os.Exit(1)
}

// loadCorpusFormat dispatches on the input format: binary (datagen
// records) or the text formats for real public datasets.
func loadCorpusFormat(format, kind string, buf []byte, support float64) (pareto.Corpus, pareto.ProfileFunc, error) {
	switch format {
	case "binary":
		return loadCorpus(kind, buf, support)
	case "edgelist":
		g, err := datasets.LoadEdgeList(bytes.NewReader(buf))
		if err != nil {
			return nil, nil, err
		}
		corpus, err := pareto.NewGraphCorpus(g)
		if err != nil {
			return nil, nil, err
		}
		return corpus, graphProfile(corpus), nil
	case "transactions":
		docs, vocab, err := datasets.LoadTransactions(bytes.NewReader(buf))
		if err != nil {
			return nil, nil, err
		}
		corpus, err := pareto.NewTextCorpus(docs, vocab)
		if err != nil {
			return nil, nil, err
		}
		return corpus, textProfile(corpus, support), nil
	default:
		return nil, nil, fmt.Errorf("unknown format %q (want binary, edgelist or transactions)", format)
	}
}

// graphProfile profiles via the webgraph compressor.
func graphProfile(corpus *pareto.GraphCorpus) pareto.ProfileFunc {
	return func(indices []int) (float64, error) {
		ids := make([]uint32, len(indices))
		lists := make([][]uint32, len(indices))
		for k, i := range indices {
			ids[k] = uint32(i)
			lists[k] = corpus.G.Adj[i]
		}
		enc, err := graphcomp.Encode(ids, lists, graphcomp.Config{Window: 7})
		if err != nil {
			return 0, err
		}
		return enc.Cost, nil
	}
}

// textProfile profiles via local Apriori mining.
func textProfile(corpus *pareto.TextCorpus, support float64) pareto.ProfileFunc {
	return func(indices []int) (float64, error) {
		txns := make([]apriori.Transaction, len(indices))
		for k, i := range indices {
			txns[k] = corpus.Docs[i].Terms
		}
		pr, err := apriori.MineLocal(txns, support, 3)
		if err != nil {
			return 0, err
		}
		return pr.Cost, nil
	}
}

// loadCorpus decodes a datagen file and returns the corpus plus the
// kind-appropriate profiling function (the actual algorithm run on
// representative samples).
func loadCorpus(kind string, buf []byte, support float64) (pareto.Corpus, pareto.ProfileFunc, error) {
	switch kind {
	case "tree":
		trees, err := pivots.DecodeTreeRecords(buf)
		if err != nil {
			return nil, nil, err
		}
		corpus, err := pareto.NewTreeCorpus(trees)
		if err != nil {
			return nil, nil, err
		}
		profile := func(indices []int) (float64, error) {
			sub := make([]pareto.Tree, len(indices))
			for k, i := range indices {
				sub[k] = corpus.Trees[i]
			}
			pr, err := treemine.MineLocal(sub, support, treemine.Config{MaxNodes: 4})
			if err != nil {
				return 0, err
			}
			return pr.Cost, nil
		}
		return corpus, profile, nil
	case "graph":
		g, err := pivots.DecodeGraphRecords(buf)
		if err != nil {
			return nil, nil, err
		}
		corpus, err := pareto.NewGraphCorpus(g)
		if err != nil {
			return nil, nil, err
		}
		profile := func(indices []int) (float64, error) {
			ids := make([]uint32, len(indices))
			lists := make([][]uint32, len(indices))
			for k, i := range indices {
				ids[k] = uint32(i)
				lists[k] = corpus.G.Adj[i]
			}
			enc, err := graphcomp.Encode(ids, lists, graphcomp.Config{Window: 7})
			if err != nil {
				return 0, err
			}
			return enc.Cost, nil
		}
		return corpus, profile, nil
	case "text":
		docs, vocab, err := pivots.DecodeTextRecords(buf)
		if err != nil {
			return nil, nil, err
		}
		corpus, err := pareto.NewTextCorpus(docs, vocab)
		if err != nil {
			return nil, nil, err
		}
		profile := func(indices []int) (float64, error) {
			txns := make([]apriori.Transaction, len(indices))
			for k, i := range indices {
				txns[k] = corpus.Docs[i].Terms
			}
			pr, err := apriori.MineLocal(txns, support, 3)
			if err != nil {
				return 0, err
			}
			return pr.Cost, nil
		}
		return corpus, profile, nil
	default:
		return nil, nil, fmt.Errorf("unknown kind %q (want tree, graph or text)", kind)
	}
}
