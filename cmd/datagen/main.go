// Command datagen generates the synthetic stand-in datasets (Table I)
// and writes them to disk in the framework's length-prefixed record
// format, one file per dataset, plus a stats line per dataset.
//
// Usage:
//
//	datagen -out /tmp/data -scale 0.01
//	datagen -out /tmp/data -only rcv1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pareto/internal/datasets"
	"pareto/internal/pivots"
)

func main() {
	var (
		out   = flag.String("out", "data", "output directory")
		scale = flag.Float64("scale", 0.005, "scale factor relative to Table I sizes")
		only  = flag.String("only", "", "generate a single dataset: swissprot, treebank, uk, arabic, rcv1")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	want := func(name string) bool { return *only == "" || *only == name }

	if want("swissprot") {
		writeTrees(*out, "swissprot", datasets.SwissProtLike(*scale))
	}
	if want("treebank") {
		writeTrees(*out, "treebank", datasets.TreebankLike(*scale))
	}
	if want("uk") {
		writeGraph(*out, "uk", datasets.UKLike(*scale))
	}
	if want("arabic") {
		writeGraph(*out, "arabic", datasets.ArabicLike(*scale))
	}
	if want("rcv1") {
		writeText(*out, "rcv1", datasets.RCV1Like(*scale))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}

func writeAll(path string, n int, appendRecord func(dst []byte, i int) []byte) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	buf := make([]byte, 0, 1<<20)
	for i := 0; i < n; i++ {
		buf = appendRecord(buf[:0], i)
		if _, err := f.Write(buf); err != nil {
			fail(err)
		}
	}
}

func writeTrees(dir, name string, cfg datasets.TreeConfig) {
	trees, _, err := datasets.GenerateTrees(cfg)
	if err != nil {
		fail(err)
	}
	corpus, err := pivots.NewTreeCorpus(trees)
	if err != nil {
		fail(err)
	}
	path := filepath.Join(dir, name+".trees")
	writeAll(path, corpus.Len(), corpus.AppendRecord)
	st := datasets.TreeStats(name, trees)
	fmt.Printf("%-10s %8d trees %10d nodes -> %s\n", name, st.Records, st.Units, path)
}

func writeGraph(dir, name string, cfg datasets.GraphConfig) {
	g, _, err := datasets.GenerateGraph(cfg)
	if err != nil {
		fail(err)
	}
	corpus, err := pivots.NewGraphCorpus(g)
	if err != nil {
		fail(err)
	}
	path := filepath.Join(dir, name+".graph")
	writeAll(path, corpus.Len(), corpus.AppendRecord)
	st := datasets.GraphStats(name, g)
	fmt.Printf("%-10s %8d verts %10d edges -> %s\n", name, st.Records, st.Units, path)
}

func writeText(dir, name string, cfg datasets.TextConfig) {
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		fail(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		fail(err)
	}
	path := filepath.Join(dir, name+".docs")
	writeAll(path, corpus.Len(), corpus.AppendRecord)
	st := datasets.TextStats(name, docs, cfg.VocabSize)
	fmt.Printf("%-10s %8d docs  %10d terms -> %s\n", name, st.Records, st.Units, path)
}
