// Command kvcli is a minimal interactive client for kvstored (and any
// RESP server): it reads whitespace-separated commands from stdin or
// from the command line and prints the replies.
//
// Usage:
//
//	kvcli -addr 127.0.0.1:6380 SET greeting hello
//	kvcli -addr 127.0.0.1:6380          # interactive: one command per line
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pareto/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "server address")
	flag.Parse()
	c, err := kvstore.Dial(*addr, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvcli: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	if args := flag.Args(); len(args) > 0 {
		if err := runOne(c, args); err != nil {
			fmt.Fprintf(os.Stderr, "kvcli: %v\n", err)
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if strings.EqualFold(fields[0], "quit") || strings.EqualFold(fields[0], "exit") {
			return
		}
		if err := runOne(c, fields); err != nil {
			fmt.Fprintf(os.Stderr, "kvcli: %v\n", err)
			return
		}
	}
}

// runOne sends one command and renders its reply.
func runOne(c *kvstore.Client, fields []string) error {
	args := make([][]byte, len(fields)-1)
	for i, f := range fields[1:] {
		args[i] = []byte(f)
	}
	rep, err := c.Do(fields[0], args...)
	if err != nil {
		return err
	}
	printReply(rep, "")
	return nil
}

func printReply(r kvstore.Reply, indent string) {
	switch r.Type {
	case kvstore.Array:
		fmt.Printf("%sarray of %d:\n", indent, len(r.Array))
		for i, el := range r.Array {
			fmt.Printf("%s%d) ", indent, i+1)
			printReply(el, "")
		}
	default:
		fmt.Printf("%s%s\n", indent, r.String())
	}
}
