// Command kvcli is a minimal interactive client for kvstored (and any
// RESP server): it reads whitespace-separated commands from stdin or
// from the command line and prints the replies.
//
// Usage:
//
//	kvcli -addr 127.0.0.1:6380 SET greeting hello
//	kvcli -addr 127.0.0.1:6380 info           # formatted server telemetry
//	kvcli -addr 127.0.0.1:6380 save           # snapshot + AOF truncate
//	kvcli -addr 127.0.0.1:6380 bgrewriteaof   # same compaction, Redis spelling
//	kvcli -addr 127.0.0.1:7001 cluster slots  # formatted slot map
//	kvcli -addr 127.0.0.1:6380 replinfo       # formatted replication state
//	kvcli -addr 127.0.0.1:6380                # interactive: one command per line
//
// The info subcommand fetches the server's telemetry snapshot (the
// INFO command) and renders command counts, latency percentiles and
// connection statistics instead of dumping raw JSON. cluster slots
// renders the server's hash-slot ownership table as one range per
// line (with any replicas the node advertises for its own ranges);
// replinfo renders the node's replication role, offsets, lag, and
// connected replicas; save and bgrewriteaof pass through to the
// server's persistence rewrite (snapshot written, append-only log
// truncated). REPLICAOF, REPLTAKEOVER and CLUSTER REASSIGN pass
// through verbatim like any other command.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"pareto/internal/kvstore"
	"pareto/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "server address")
	flag.Parse()
	c, err := kvstore.Dial(*addr, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvcli: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	if args := flag.Args(); len(args) > 0 {
		if err := runOne(c, args); err != nil {
			fmt.Fprintf(os.Stderr, "kvcli: %v\n", err)
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if strings.EqualFold(fields[0], "quit") || strings.EqualFold(fields[0], "exit") {
			return
		}
		if err := runOne(c, fields); err != nil {
			fmt.Fprintf(os.Stderr, "kvcli: %v\n", err)
			return
		}
	}
}

// runOne sends one command and renders its reply. The info and
// "cluster slots" subcommands are special-cased into formatted
// reports; everything else (including save and bgrewriteaof) passes
// through to the server verbatim.
func runOne(c *kvstore.Client, fields []string) error {
	if strings.EqualFold(fields[0], "info") && len(fields) == 1 {
		return runInfo(c)
	}
	if strings.EqualFold(fields[0], "replinfo") && len(fields) == 1 {
		return runReplInfo(c)
	}
	if len(fields) == 2 && strings.EqualFold(fields[0], "cluster") && strings.EqualFold(fields[1], "slots") {
		return runClusterSlots(c)
	}
	args := make([][]byte, len(fields)-1)
	for i, f := range fields[1:] {
		args[i] = []byte(f)
	}
	rep, err := c.Do(fields[0], args...)
	if err != nil {
		return err
	}
	printReply(rep, "")
	return nil
}

// runInfo fetches and pretty-prints the server telemetry snapshot.
func runInfo(c *kvstore.Client) error {
	rep, err := c.Do("INFO")
	if err != nil {
		return err
	}
	if rep.Type == kvstore.ErrorReply {
		return fmt.Errorf("info: %s", rep.String())
	}
	snap, err := telemetry.ReadSnapshot(strings.NewReader(rep.String()))
	if err != nil {
		return fmt.Errorf("info: parsing snapshot: %w", err)
	}
	printInfo(os.Stdout, snap)
	return nil
}

// runClusterSlots fetches and pretty-prints the hash-slot map: one
// "lo-hi (count) addr" line per contiguous range.
func runClusterSlots(c *kvstore.Client) error {
	rep, err := c.Do("CLUSTER", []byte("SLOTS"))
	if err != nil {
		return err
	}
	if rep.Type == kvstore.ErrorReply {
		return fmt.Errorf("cluster slots: %s", rep.Str)
	}
	if rep.Type != kvstore.Array {
		return fmt.Errorf("cluster slots: unexpected reply %s", rep.String())
	}
	fmt.Printf("%d slot ranges over %d slots:\n", len(rep.Array), kvstore.NumSlots)
	for _, el := range rep.Array {
		// [lo, hi, owner, replica...] — the replica tail is present only
		// on ranges the queried node itself owns.
		if el.Type != kvstore.Array || len(el.Array) < 3 {
			return fmt.Errorf("cluster slots: malformed entry %s", el.String())
		}
		lo, hi := el.Array[0].Int, el.Array[1].Int
		line := fmt.Sprintf("%5d-%-5d (%4d slots)  %s", lo, hi, hi-lo+1, el.Array[2].String())
		for _, rel := range el.Array[3:] {
			line += "  replica=" + rel.String()
		}
		fmt.Println(line)
	}
	return nil
}

// runReplInfo fetches and pretty-prints the node's replication state
// (the REPLINFO command's JSON document).
func runReplInfo(c *kvstore.Client) error {
	rep, err := c.Do("REPLINFO")
	if err != nil {
		return err
	}
	if rep.Type == kvstore.ErrorReply {
		return fmt.Errorf("replinfo: %s", rep.Str)
	}
	var info struct {
		Role          string `json:"role"`
		Primary       string `json:"primary"`
		Gen           uint64 `json:"gen"`
		Offset        int64  `json:"offset"`
		DurableOffset int64  `json:"durable_offset"`
		LagBytes      int64  `json:"lag_bytes"`
		Connected     bool   `json:"connected"`
		LastPingMs    int64  `json:"last_ping_ms"`
		Replicas      []struct {
			Addr     string  `json:"addr"`
			Gen      uint64  `json:"gen"`
			SentOff  int64   `json:"sent_off"`
			AckedOff int64   `json:"acked_off"`
			AgeSec   float64 `json:"age_sec"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(rep.Bulk, &info); err != nil {
		return fmt.Errorf("replinfo: parsing reply: %w", err)
	}
	fmt.Printf("role: %s\n", info.Role)
	if info.Role == "replica" {
		fmt.Printf("primary: %s\nconnected: %v\n", info.Primary, info.Connected)
		fmt.Printf("cursor: gen %d offset %d\nlag_bytes: %d\n", info.Gen, info.Offset, info.LagBytes)
		if info.LastPingMs > 0 {
			fmt.Printf("last_ping_ms: %d\n", info.LastPingMs)
		}
		return nil
	}
	fmt.Printf("log: gen %d offset %d durable %d\n", info.Gen, info.Offset, info.DurableOffset)
	fmt.Printf("replicas: %d\n", len(info.Replicas))
	for _, r := range info.Replicas {
		name := r.Addr
		if name == "" {
			name = "(anonymous)"
		}
		fmt.Printf("  %s  sent=%d acked=%d lag=%d age=%.1fs\n",
			name, r.SentOff, r.AckedOff, r.SentOff-r.AckedOff, r.AgeSec)
	}
	return nil
}

// printInfo renders the parts of a server snapshot an operator reaches
// for first: per-command traffic, latency percentiles, connections.
func printInfo(w *os.File, snap *telemetry.Snapshot) {
	fmt.Fprintf(w, "# server\nuptime_sec: %.1f\n", snap.UptimeSec)

	fmt.Fprintf(w, "\n# commands\n")
	const cmdPrefix = `kv_server_commands_total{cmd="`
	var cmds []string
	var total int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, cmdPrefix) && v > 0 {
			cmds = append(cmds, name)
			total += v
		}
	}
	sort.Slice(cmds, func(i, j int) bool {
		if snap.Counters[cmds[i]] != snap.Counters[cmds[j]] {
			return snap.Counters[cmds[i]] > snap.Counters[cmds[j]]
		}
		return cmds[i] < cmds[j]
	})
	for _, name := range cmds {
		cmd := strings.TrimSuffix(strings.TrimPrefix(name, cmdPrefix), `"}`)
		fmt.Fprintf(w, "%-10s %d\n", cmd+":", snap.Counters[name])
	}
	fmt.Fprintf(w, "%-10s %d\n", "total:", total)
	fmt.Fprintf(w, "%-10s %d\n", "errors:", snap.Counters["kv_server_command_errors_total"])

	if h, ok := snap.Histograms["kv_server_command_latency_ns"]; ok && h.Count > 0 {
		fmt.Fprintf(w, "\n# latency (batch mean)\n")
		for _, q := range []struct {
			label string
			q     float64
		}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
			fmt.Fprintf(w, "%s: %.1fµs\n", q.label, h.Quantile(q.q)/1e3)
		}
		fmt.Fprintf(w, "mean: %.1fµs over %d commands\n", h.Mean()/1e3, h.Count)
	}

	fmt.Fprintf(w, "\n# connections\n")
	fmt.Fprintf(w, "active: %.0f\ntotal: %d\nparse_errors: %d\n",
		snap.Gauges["kv_server_connections_active"],
		snap.Counters["kv_server_connections_total"],
		snap.Counters["kv_server_parse_errors_total"])
	fmt.Fprintf(w, "bytes_in: %d\nbytes_out: %d\n",
		snap.Counters["kv_server_bytes_in_total"],
		snap.Counters["kv_server_bytes_out_total"])
}

func printReply(r kvstore.Reply, indent string) {
	switch r.Type {
	case kvstore.Array:
		fmt.Printf("%sarray of %d:\n", indent, len(r.Array))
		for i, el := range r.Array {
			fmt.Printf("%s%d) ", indent, i+1)
			printReply(el, "")
		}
	default:
		fmt.Printf("%s%s\n", indent, r.String())
	}
}
