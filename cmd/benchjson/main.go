// Command benchjson converts `go test -bench` text output into a JSON
// array so CI can archive benchmark results as a machine-readable
// artifact and diff them across runs.
//
// Usage:
//
//	go test ./internal/kvstore -run '^$' -bench . -benchmem | benchjson -o BENCH_kvstore.json
//	go test -bench . ./... | benchjson          # JSON to stdout
//
// Each benchmark line becomes one object:
//
//	{
//	  "name": "ServerPipelinedSetGet",
//	  "gomaxprocs": 4,
//	  "iters": 235507,
//	  "ns_per_op": 522.6,
//	  "bytes_per_op": 42,
//	  "allocs_per_op": 1,
//	  "ops_per_sec": 1913567
//	}
//
// gomaxprocs is parsed from the -N suffix go test appends when the
// benchmark ran with GOMAXPROCS != 1 (absent suffix = 1). ops_per_sec
// prefers an explicit "ops/s" custom metric (b.ReportMetric) and falls
// back to 1e9 / ns_per_op. Non-benchmark lines (goos/pkg headers, PASS,
// custom metrics with other units) pass through untouched to stderr so
// piping through benchjson never hides test output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Name       string  `json:"name"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Iters      int64   `json:"iters"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op"`
	AllocsPer  int64   `json:"allocs_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file (default: stdout)")
	flag.Parse()

	var results []benchResult
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []benchResult{} // emit [] rather than null
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one "BenchmarkName-N  iters  value unit ..."
// line. Returns ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			procs = n
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: name, GoMaxProcs: procs, Iters: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPer = int64(v)
		case "ops/s":
			r.OpsPerSec = v
		}
	}
	if r.NsPerOp == 0 {
		return benchResult{}, false
	}
	if r.OpsPerSec == 0 {
		r.OpsPerSec = 1e9 / r.NsPerOp
	}
	return r, true
}
