package pareto

import (
	"testing"

	"pareto/internal/datasets"
	"pareto/internal/sampling"
)

func quickFramework(t *testing.T) (*Framework, *TextCorpus) {
	t.Helper()
	cfg := datasets.RCV1Like(0.0005)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := PaperCluster(4, DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(corpus, cl)
	if err != nil {
		t.Fatal(err)
	}
	return fw, corpus
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil corpus accepted")
	}
	corpus, err := NewTextCorpus([]Doc{{Terms: []uint32{1}}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(corpus, nil); err == nil {
		t.Error("nil cluster accepted")
	}
}

func TestFrameworkEndToEnd(t *testing.T) {
	fw, corpus := quickFramework(t)
	fw.TraceOffset = 12 * 3600
	profile := func(indices []int) (float64, error) {
		var c float64
		for _, i := range indices {
			c += 1000 * float64(corpus.Weight(i))
		}
		return c, nil
	}
	run := func(node int, indices []int) (float64, error) {
		return profile(indices)
	}
	base, err := fw.Plan(Stratified, nil)
	if err != nil {
		t.Fatal(err)
	}
	het, err := fw.Plan(HetAware, profile)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := fw.Execute(base, run)
	if err != nil {
		t.Fatal(err)
	}
	hetRes, err := fw.Execute(het, run)
	if err != nil {
		t.Fatal(err)
	}
	if hetRes.Makespan >= baseRes.Makespan {
		t.Errorf("Het-Aware %.3fs not below baseline %.3fs", hetRes.Makespan, baseRes.Makespan)
	}
	// Place to memory and verify coverage.
	st := NewMemoryStore()
	if err := fw.PlaceTo(het, st); err != nil {
		t.Fatal(err)
	}
	total := 0
	for j := 0; j < het.Assign.P(); j++ {
		recs, err := st.ReadPartition(j)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
	}
	if total != corpus.Len() {
		t.Errorf("placed %d of %d records", total, corpus.Len())
	}
	if err := fw.PlaceTo(nil, st); err == nil {
		t.Error("nil plan accepted by PlaceTo")
	}
}

func TestFrameworkEnergyAware(t *testing.T) {
	fw, corpus := quickFramework(t)
	fw.TraceOffset = 12 * 3600
	fw.Alpha = 0.99
	profile := func(indices []int) (float64, error) {
		var c float64
		for _, i := range indices {
			c += 1000 * float64(corpus.Weight(i))
		}
		return c, nil
	}
	run := func(node int, indices []int) (float64, error) { return profile(indices) }
	het, err := fw.Plan(HetAware, profile)
	if err != nil {
		t.Fatal(err)
	}
	hea, err := fw.Plan(HetEnergyAware, profile)
	if err != nil {
		t.Fatal(err)
	}
	hetRes, err := fw.Execute(het, run)
	if err != nil {
		t.Fatal(err)
	}
	heaRes, err := fw.Execute(hea, run)
	if err != nil {
		t.Fatal(err)
	}
	if heaRes.DirtyEnergy > hetRes.DirtyEnergy {
		t.Errorf("energy-aware dirty %.1f J above time-only %.1f J",
			heaRes.DirtyEnergy, hetRes.DirtyEnergy)
	}
	if fw.Corpus() != corpus || fw.Cluster() == nil {
		t.Error("accessors broken")
	}
}

func TestFacadeModelerReExports(t *testing.T) {
	nodes := []NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 300},
		{Time: sampling.LinearFit{Slope: 0.002}, DirtyRate: 50},
		{Time: sampling.LinearFit{Slope: 0.004}, DirtyRate: 0},
	}
	pts, err := Frontier(nodes, 100000, DefaultAlphaSweep())
	if err != nil || len(pts) == 0 {
		t.Fatalf("Frontier: %v", err)
	}
	exact, err := ExactFrontier(nodes, 100000, 1e-6)
	if err != nil || len(exact) == 0 {
		t.Fatalf("ExactFrontier: %v", err)
	}
	chosen, plan, err := SelectNodes(nodes, 100000, 2, 1)
	if err != nil || len(chosen) != 2 || plan == nil {
		t.Fatalf("SelectNodes: %v %v", chosen, err)
	}
}

func TestFrameworkNormalizedMode(t *testing.T) {
	fw, corpus := quickFramework(t)
	fw.TraceOffset = 12 * 3600
	fw.Normalized = true
	fw.Alpha = 0.5
	profile := func(indices []int) (float64, error) {
		var c float64
		for _, i := range indices {
			c += 1000 * float64(corpus.Weight(i))
		}
		return c, nil
	}
	plan, err := fw.Plan(HetEnergyAware, profile)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range plan.Assign.Sizes() {
		sum += s
	}
	if sum != corpus.Len() {
		t.Errorf("normalized plan sizes sum %d", sum)
	}
}
